// Loom/relacy-style concurrency model checking for the lock-free core
// (DESIGN.md §4.6).
//
// A *scenario* describes one bounded concurrent situation: it builds the
// state under test, spawns 2..N model threads, and registers invariant
// oracles. The engine runs the threads *sequentialized*: exactly one model
// thread executes at a time, and control can only transfer at the schedule
// points the atomic shim (src/check/shim.h) inserts before every
// instrumented load/store/CAS. Which thread runs next at each point is a
// scheduling decision taken by an exploration strategy:
//
//   - kRandom: a seeded random walk with a preemption bound — each
//     execution preempts the running thread at most `preemption_bound`
//     times at uniformly chosen points (most concurrency bugs are
//     triggered by schedules with very few preemptions). Every execution
//     is a pure function of its seed, so any failing schedule replays
//     deterministically from the recorded seed (ReplaySeed).
//   - kExhaustive: depth-first enumeration of *every* interleaving for
//     tiny scenarios, with a completion flag. Failing schedules replay
//     from the recorded decision trace (ReplayTrace).
//
// Invariant oracles registered with Execution::OnStep run after every
// instrumented memory operation (while all other threads are paused);
// their own reads are not schedule points. A violated invariant throws
// CheckFailure, which aborts the execution and surfaces the message,
// seed, and schedule trace in the RunResult.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace hyperalloc::check {

// Thrown by oracles/scenarios on an invariant violation; caught by the
// engine, which turns it into a failed RunResult.
class CheckFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline void Require(bool condition, const std::string& message) {
  if (!condition) {
    throw CheckFailure(message);
  }
}

inline constexpr unsigned kUnboundedPreemptions = ~0u;

// Default for Options::memory_model: true unless the environment sets
// HYPERALLOC_MC_MM=0 (scripts/check.sh runs the suite in both
// configurations so the SC-only engine stays supported for quick
// iteration).
bool DefaultMemoryModel();

struct Options {
  enum class Mode {
    kRandom,      // seeded random walk, `iterations` executions
    kExhaustive,  // DFS over all interleavings (tiny scenarios only)
  };

  Mode mode = Mode::kRandom;
  // Random mode: number of executions and base seed (execution i uses
  // seed + i as its per-execution seed).
  uint64_t iterations = 2000;
  uint64_t seed = 1;
  // Random mode: at most this many preemptions (switching away from a
  // thread that could have continued) per execution, each taken with
  // `preempt_probability` at any schedule point.
  unsigned preemption_bound = 3;
  double preempt_probability = 1.0 / 16;
  // Livelock guard: fail an execution that exceeds this many schedule
  // points (lock-free retry loops cannot spin forever under any fair
  // schedule; hitting the budget means the scenario diverged).
  uint64_t max_steps = 1 << 20;
  // Exhaustive mode: time-box — stop (complete=false) after this many
  // executions even if the schedule tree has not been exhausted.
  uint64_t max_executions = 1 << 17;

  // Memory-model layer (src/check/memory_model.h): vector-clock
  // happens-before tracking, bounded stale reads, Shared<T> data-race
  // detection. Off = the historical SC-only engine (every declared
  // order executed as seq_cst, loads always newest, Shared<T> inert).
  bool memory_model = DefaultMemoryModel();
  // At most this many loads per execution may return a non-newest value
  // (keeps CAS/spin retry loops terminating and the exhaustive decision
  // tree bounded). Further loads read the newest entry decision-free.
  uint32_t stale_read_budget = 8;
  // Stale entries retained per atomic location beyond the newest one
  // (the modification-order history bound).
  uint32_t history_depth = 3;
};

struct RunResult {
  // Number of executions (distinct explored schedules) that ran.
  uint64_t executions = 0;
  // Exhaustive mode: the whole schedule tree was explored.
  bool complete = false;

  bool failed = false;
  std::string message;
  // Random mode: the per-execution seed of the failing schedule; feed to
  // ReplaySeed to reproduce it exactly.
  uint64_t failing_seed = 0;
  // Replay-side diagnosis: the failure is a divergence between the
  // recorded decision stream and the scenario as it exists *now* (trace
  // exhausted, decision kind mismatch, recorded thread not runnable, or
  // a seed replay that no longer follows its recorded trace) — the
  // scenario changed since the trace was recorded, so the replay says
  // nothing about the original bug.
  bool stale_trace = false;
  // The decision stream of the last (or failing) execution: the thread
  // id chosen at every schedule point, interleaved with value decisions
  // (stale-read index picks) tagged with mm::kValueDecisionTag. Feed to
  // ReplayTrace to force it again (exhaustive mode; random mode replays
  // via the seed because spurious weak-CAS failures are drawn from the
  // same random stream).
  std::vector<uint32_t> trace;
};

// One execution's configuration, assembled by the scenario callback.
class Execution {
 public:
  // Adds a model thread. Threads are identified by spawn order (0-based);
  // the ids appearing in RunResult::trace refer to these.
  void Spawn(std::function<void()> fn) { threads_.push_back(std::move(fn)); }

  // Registers an invariant oracle, run after every instrumented memory
  // operation. Oracle reads are not schedule points.
  void OnStep(std::function<void()> oracle) {
    on_step_.push_back(std::move(oracle));
  }

  // Registers a quiescent check, run once after all threads finished.
  void OnEnd(std::function<void()> fn) { on_end_.push_back(std::move(fn)); }

  // Engine-side read access.
  const std::vector<std::function<void()>>& threads() const {
    return threads_;
  }
  const std::vector<std::function<void()>>& step_oracles() const {
    return on_step_;
  }
  const std::vector<std::function<void()>>& end_checks() const {
    return on_end_;
  }

 private:
  std::vector<std::function<void()>> threads_;
  std::vector<std::function<void()>> on_step_;
  std::vector<std::function<void()>> on_end_;
};

// Builds one execution. Called once per explored schedule; must be
// deterministic (no wall clock, no global RNG) so that schedules replay.
using Scenario = std::function<void(Execution&)>;

// Explores the scenario per the options. Stops at the first failure.
RunResult Explore(const Options& options, const Scenario& scenario);

// Runs exactly one random-mode execution with the given per-execution
// seed. Replaying a recorded failing_seed reproduces the identical
// schedule (same trace, same failure).
RunResult ReplaySeed(const Options& options, uint64_t seed,
                     const Scenario& scenario);

// Seed replay that also cross-checks the produced decision stream
// against the originally recorded one. A pure seed replay cannot tell a
// scheduling divergence (scenario changed since the trace was recorded)
// from a genuine pass/fail difference; this variant marks the result
// stale_trace — with a "stale trace" message naming the first diverging
// decision — instead of returning a silently unrelated execution.
RunResult ReplaySeed(const Options& options, uint64_t seed,
                     const Scenario& scenario,
                     const std::vector<uint32_t>& expected_trace);

// Runs exactly one execution forcing the recorded decision stream. A
// trace that no longer matches the scenario (exhausted early, thread vs
// value decision mismatch, recorded thread not runnable) fails with a
// "stale trace" message and RunResult::stale_trace set, not with a
// misleading invariant message.
RunResult ReplayTrace(const Options& options,
                      const std::vector<uint32_t>& trace,
                      const Scenario& scenario);

// ---------------------------------------------------------------------
// Hooks used by the atomic shim (src/check/shim.h).
// ---------------------------------------------------------------------

// A scheduling decision point. No-op when the calling thread is not a
// model thread (setup/teardown code, production binaries that happen to
// link the checker) or while an oracle is running.
void SchedulePoint();

// Scheduler decision: should this compare_exchange_weak fail spuriously?
// (Random mode only; exhaustive keeps the decision tree CAS-deterministic.)
bool SpuriousCasFailure();

}  // namespace hyperalloc::check
