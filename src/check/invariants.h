// Invariant oracles for the LLFree shared state, used by the model-check
// scenarios (tests/model_check_test.cc, after every schedule point) and
// by the stress tests (tests/llfree_concurrent_test.cc, at quiescent
// points). Header-only and build-agnostic: all reads go through the
// hyperalloc::Atomic alias, so the same oracle code works against
// std::atomic and against the model-check shim (where oracle reads are
// not schedule points — the engine masks them).
//
// Step invariants vs quiescent invariants: LLFree's transactions
// consistently remove resources from counters *before* taking them and
// give them back in the opposite order (e.g. Get debits the reservation
// before claiming bits; Put clears bits and credits the area before the
// reservation). Mid-transaction the counters therefore under-promise,
// never over-promise, which is exactly what makes the allocator safe
// under concurrency — and what CheckStepInvariants asserts as
// inequalities that hold at *every* schedule point. The exact equalities
// only hold at quiescence and are asserted by CheckQuiescent via
// LLFree::Validate().
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/check/scheduler.h"
#include "src/core/reclaim_states.h"
#include "src/hv/host_memory.h"
#include "src/llfree/bitfield.h"
#include "src/llfree/entries.h"
#include "src/llfree/llfree.h"

namespace hyperalloc::check {

// The atomic bit field under test, by its role in the scenarios.
using AtomicBitfield = llfree::AreaBits;

// Allocated (set) bits of one area's bit-field words.
inline unsigned AreaPopCount(const llfree::SharedState& state,
                             uint64_t area) {
  unsigned total = 0;
  for (unsigned w = 0; w < llfree::kWordsPerArea; ++w) {
    total += static_cast<unsigned>(std::popcount(
        state.bitfield()[area * llfree::kWordsPerArea + w].load(
            std::memory_order_acquire)));
  }
  return total;
}

// Invariants that hold after *every* instrumented memory operation:
//
//  (1) per area: free counter + allocated bits <= 512 (a transaction
//      debits the counter before setting bits, credits it after clearing
//      them — the sum dips mid-flight, never overshoots);
//  (2) per tree: tree free counter + all active reservations parked on
//      the tree <= sum of the tree's area counters (same argument one
//      level up: Get debits top-down, Put credits bottom-up);
//  (3) a huge-allocated area (A=1: guest huge frame or hard reclaim)
//      advertises no free frames.
inline void CheckStepInvariants(const llfree::SharedState& state) {
  const unsigned per_tree = state.config().areas_per_tree;
  std::vector<uint64_t> area_sum(state.num_trees(), 0);

  for (uint64_t a = 0; a < state.num_areas(); ++a) {
    const llfree::AreaEntry entry = llfree::AreaEntry::Unpack(
        state.areas()[a].load(std::memory_order_acquire));
    const unsigned pop = AreaPopCount(state, a);
    Require(entry.free + pop <= kFramesPerHuge,
            "area " + std::to_string(a) + ": free counter " +
                std::to_string(entry.free) + " + popcount " +
                std::to_string(pop) + " exceeds 512 (double credit)");
    Require(!entry.allocated || entry.free == 0,
            "area " + std::to_string(a) +
                ": huge-allocated but free counter is " +
                std::to_string(entry.free));
    area_sum[a / per_tree] += entry.free;
  }

  std::vector<uint64_t> counted(state.num_trees(), 0);
  for (uint64_t t = 0; t < state.num_trees(); ++t) {
    counted[t] = llfree::TreeEntry::Unpack(
                     state.trees()[t].load(std::memory_order_acquire))
                     .free;
  }
  for (unsigned s = 0; s < state.config().NumSlots(); ++s) {
    const llfree::Reservation r = llfree::Reservation::Unpack(
        state.reservations()[s].load(std::memory_order_acquire));
    if (r.active && r.tree < state.num_trees()) {
      counted[r.tree] += r.free;
    }
  }
  for (uint64_t t = 0; t < state.num_trees(); ++t) {
    Require(counted[t] <= area_sum[t],
            "tree " + std::to_string(t) + ": counter + reservations " +
                std::to_string(counted[t]) + " exceed the " +
                std::to_string(area_sum[t]) +
                " frames its areas advertise (double credit)");
  }
}

// Quiescent check (no in-flight operations): the counters must agree
// *exactly* across all levels. Delegates to LLFree::Validate().
inline void CheckQuiescent(const llfree::LLFree& ll) {
  Require(ll.Validate(),
          "quiescent state inconsistent (LLFree::Validate failed; see "
          "stderr for the first violation)");
}

// Host frame pool (src/hv/host_memory.h), same under-promise discipline
// one layer up: TryReserve debits a credit chain *before* charging
// `used`, Release un-charges `used` before crediting. Frames in hand
// between two credit buckets are counted in neither, so at every step
//
//   used <= total   and   credits + used <= total
//
// (never an overshoot — the pool cannot overcommit), while the exact
// equality only holds at quiescence.
inline void CheckHostMemoryStep(const hv::HostMemory& pool) {
  const uint64_t used = pool.used_frames();
  const uint64_t credits = pool.DebugFreeCredits();
  Require(used <= pool.total_frames(),
          "host pool: used " + std::to_string(used) + " exceeds total " +
              std::to_string(pool.total_frames()) + " (overcommit)");
  Require(credits + used <= pool.total_frames(),
          "host pool: credits " + std::to_string(credits) + " + used " +
              std::to_string(used) + " exceed total " +
              std::to_string(pool.total_frames()) + " (double credit)");
}

// Quiescent: every free frame is parked in exactly one credit bucket,
// and the CAS-max peak has caught up with the last admission.
inline void CheckHostMemoryQuiescent(const hv::HostMemory& pool) {
  const uint64_t used = pool.used_frames();
  const uint64_t credits = pool.DebugFreeCredits();
  Require(credits + used == pool.total_frames(),
          "host pool quiescent: credits " + std::to_string(credits) +
              " + used " + std::to_string(used) + " != total " +
              std::to_string(pool.total_frames()) + " (leaked frames)");
  Require(pool.peak_frames() >= used,
          "host pool quiescent: peak " +
              std::to_string(pool.peak_frames()) + " below current used " +
              std::to_string(used) + " (lost high-water update)");
  Require(pool.peak_frames() <= pool.total_frames(),
          "host pool quiescent: peak " +
              std::to_string(pool.peak_frames()) + " exceeds total " +
              std::to_string(pool.total_frames()));
}

// Watches a ReclaimStateArray for illegal transitions of the paper's
// Fig. 2 state machine extended with the fault-quarantine state
// (Hard -> Installed is illegal — hard-reclaimed memory must be returned
// H -> S before it can be installed — and Quarantined is absorbing: no
// Q -> {I,S,H} edge exists, see src/core/reclaim_states.h). Register
// via Execution::OnStep. Every R transition in the code under test is
// separated from the next by instrumented LLFree operations, so the
// oracle observes each edge individually.
class ReclaimTransitionOracle {
 public:
  explicit ReclaimTransitionOracle(const core::ReclaimStateArray* states)
      : states_(states), prev_(states->size()) {
    for (HugeId h = 0; h < states_->size(); ++h) {
      prev_[h] = states_->Get(h);
    }
  }

  void operator()() {
    for (HugeId h = 0; h < states_->size(); ++h) {
      const core::ReclaimState cur = states_->Get(h);
      Require(core::IsLegalTransition(prev_[h], cur),
              "huge frame " + std::to_string(h) +
                  ": illegal reclaim-state transition " +
                  std::to_string(static_cast<unsigned>(prev_[h])) +
                  " -> " + std::to_string(static_cast<unsigned>(cur)) +
                  " (H->I needs a return first; Q is absorbing)");
      prev_[h] = cur;
    }
  }

 private:
  const core::ReclaimStateArray* states_;
  std::vector<core::ReclaimState> prev_;
};

// Minimal model of the host-side EPT/IOMMU pin counts: scenarios call
// Pin/Unpin where the real monitor would map/unmap, and the model fails
// the execution on underflow (unpinning a frame that was never pinned —
// the DMA-unsafety the paper's install handshake exists to prevent).
class PinModel {
 public:
  explicit PinModel(uint64_t num_huge) : pins_(num_huge, 0) {}

  void Pin(HugeId huge) { ++pins_.at(huge); }

  void Unpin(HugeId huge) {
    Require(pins_.at(huge) > 0,
            "huge frame " + std::to_string(huge) +
                ": pin count underflow (unpin without matching pin)");
    --pins_.at(huge);
  }

  bool IsPinned(HugeId huge) const { return pins_.at(huge) > 0; }

 private:
  std::vector<uint32_t> pins_;
};

// Tracks which frames the scenario's threads believe they own. Threads
// call Acquire right after a successful Get and Release right before
// Put; Acquire fails the execution if the allocator handed the same
// frame out twice. Check() additionally asserts, word-wise against the
// bit field, that every owned base frame is still marked allocated (the
// allocator must not free or re-issue memory under its owner); register
// it via OnStep. Not internally synchronized — model threads are
// sequentialized by the engine, which is all the synchronization needed.
class OwnershipOracle {
 public:
  explicit OwnershipOracle(const llfree::SharedState& state)
      : state_(&state),
        owned_(state.num_areas() * llfree::kWordsPerArea, 0),
        owned_huge_(state.num_areas(), 0) {}

  void Acquire(FrameId frame, unsigned order) {
    ForEachWord(frame, order, [&](uint64_t w, uint64_t mask) {
      Require((owned_[w] & mask) == 0,
              "frame run at " + std::to_string(frame) +
                  " handed out twice (order " + std::to_string(order) +
                  ")");
      owned_[w] |= mask;
    });
  }

  void Release(FrameId frame, unsigned order) {
    ForEachWord(frame, order, [&](uint64_t w, uint64_t mask) {
      Require((owned_[w] & mask) == mask,
              "releasing frame run at " + std::to_string(frame) +
                  " that is not owned (order " + std::to_string(order) +
                  ")");
      owned_[w] &= ~mask;
    });
  }

  void AcquireHuge(HugeId huge) {
    Require(owned_huge_.at(huge) == 0,
            "huge frame " + std::to_string(huge) + " handed out twice");
    owned_huge_[huge] = 1;
  }

  void ReleaseHuge(HugeId huge) {
    Require(owned_huge_.at(huge) == 1,
            "releasing huge frame " + std::to_string(huge) +
                " that is not owned");
    owned_huge_[huge] = 0;
  }

  // Owned frames must be a subset of allocated frames at every step.
  void operator()() const {
    const uint64_t words = state_->num_areas() * llfree::kWordsPerArea;
    for (uint64_t w = 0; w < words; ++w) {
      const uint64_t bits =
          state_->bitfield()[w].load(std::memory_order_acquire);
      Require((owned_[w] & ~bits) == 0,
              "bit-field word " + std::to_string(w) +
                  ": an owned base frame is marked free (allocator freed "
                  "memory under its owner)");
    }
    for (uint64_t a = 0; a < state_->num_areas(); ++a) {
      if (owned_huge_[a] != 0) {
        Require(llfree::AreaEntry::Unpack(
                    state_->areas()[a].load(std::memory_order_acquire))
                    .allocated,
                "area " + std::to_string(a) +
                    ": owned huge frame lost its allocated flag");
      }
    }
  }

 private:
  template <typename F>
  void ForEachWord(FrameId frame, unsigned order, F&& f) {
    const uint64_t run = 1ull << order;
    Require(order <= llfree::kMaxBitfieldOrder && frame % run == 0 &&
                frame + run <= state_->frames(),
            "Acquire/Release: frame " + std::to_string(frame) +
                " order " + std::to_string(order) + " out of range");
    for (uint64_t i = frame; i < frame + run; i += 64) {
      const uint64_t w = i / 64;
      const uint64_t span = run < 64 ? run : 64;
      const uint64_t mask =
          (span == 64 ? ~0ull : ((1ull << span) - 1)) << (i % 64);
      f(w, mask);
    }
  }

  const llfree::SharedState* state_;
  std::vector<uint64_t> owned_;
  std::vector<uint8_t> owned_huge_;
};

}  // namespace hyperalloc::check
