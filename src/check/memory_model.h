// C++ memory-model layer for the model checker (DESIGN.md §4.11).
//
// The scheduler (src/check/scheduler.h) explores *interleavings*; this
// layer adds the *reordering* dimension the shim's header comment used to
// disclaim: per-thread and per-atomic-location vector clocks with
// release/acquire edge propagation, a bounded per-location
// modification-order history so relaxed/acquire loads can return values
// that are stale-but-permitted by happens-before, and a data-race
// detector for non-atomic shared state (`Shared<T>`).
//
// Clock rules (the full table is in DESIGN.md §4.11):
//   - every instrumented write ticks the writing thread's own component;
//   - a release (or stronger) store publishes the writer's clock as the
//     entry's *message clock*; a relaxed store publishes nothing and
//     breaks the release sequence;
//   - an RMW always reads the newest entry and *continues* the release
//     sequence: its message clock is the previous entry's message clock
//     joined with the RMW's own clock iff the RMW releases;
//   - an acquire (or stronger) load joins the message clock of the entry
//     it reads into the reader's clock; a relaxed load moves data only;
//   - a failed CAS acts as a load of the *newest* entry with the failure
//     order (deliberately conservative: stale failed-CAS reads would let
//     exhaustive mode spin forever on retry loops);
//   - seq_cst is modeled as acq_rel whose loads never go stale. The
//     global total order S over seq_cst operations is NOT modeled, and
//     std::atomic_thread_fence is not instrumented at all (no fence
//     call sites exist in the instrumented directories; lint gate 6
//     keeps the ordering protocol visible per field).
//
// Which entries a load may return: entry i is visible to thread t unless
// a *later* entry j was written at a clock already contained in t's
// clock (reading i would travel backwards across a happens-before edge),
// or i precedes the newest entry t has already read or written on this
// location (per-thread coherence floor). The newest entry is always
// visible. Stale choices are scheduler decisions: seeded in random mode,
// enumerated in exhaustive mode, recorded in the trace (tagged with
// kValueDecisionTag), and bounded per execution by
// Options::stale_read_budget so CAS/spin loops terminate.
#pragma once

#include <cstdint>
#include <source_location>
#include <string>
#include <vector>

#include "src/check/scheduler.h"

namespace hyperalloc::check::mm {

// Model threads per execution the clock layer supports. Scenarios spawn
// 2..4 threads; the engine fails an execution that exceeds this.
inline constexpr unsigned kMaxThreads = 16;

// Decision-stream tag: value decisions (stale-read index picks) are
// recorded in RunResult::trace as (kValueDecisionTag | index), distinct
// from the untagged thread ids of scheduling decisions.
inline constexpr uint32_t kValueDecisionTag = 0x80000000u;

struct VectorClock {
  uint32_t c[kMaxThreads] = {};

  void Join(const VectorClock& other) {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      if (other.c[i] > c[i]) {
        c[i] = other.c[i];
      }
    }
  }

  // this ≤ other: every event this clock knows about, `other` knows too
  // (the happens-before partial order).
  bool LeqOf(const VectorClock& other) const {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      if (c[i] > other.c[i]) {
        return false;
      }
    }
    return true;
  }

  bool IsZero() const {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      if (c[i] != 0) {
        return false;
      }
    }
    return true;
  }

  bool operator==(const VectorClock& other) const {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      if (c[i] != other.c[i]) {
        return false;
      }
    }
    return true;
  }

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Engine hooks (implemented in scheduler.cc against the running engine).
// All return neutral values outside an mm-enabled model thread.
// ---------------------------------------------------------------------

// True iff the calling thread is a model thread of an execution with the
// memory-model layer enabled, and no oracle is running. Every other
// helper below may only do clock work when this is true.
bool Active();

// The calling model thread's id and clock. Precondition: Active().
int ThreadId();
VectorClock& Clock();

// Ticks the calling thread's own clock component (one per instrumented
// write) and returns the post-tick clock. Precondition: Active().
const VectorClock& Tick();

// A *value* decision: which of `options` happens-before-permitted values
// a load observes (0 = newest). Drawn from the same seeded stream as the
// scheduling decisions in random mode, a DFS node in exhaustive mode,
// and replayed from the tagged trace entry. Precondition: Active() and
// options >= 2.
uint32_t ChooseReadIndex(uint32_t options);

// Takes one unit of the per-execution stale-read budget
// (Options::stale_read_budget); false once exhausted — the load must
// then return the newest entry without a decision point.
bool TakeStaleBudget();

// Bounded modification-order history depth (Options::history_depth).
uint32_t HistoryDepth();

// Current schedule-point count, for race-report access sites.
uint64_t Step();

// One access to a Shared<T> location, for race reports.
struct AccessSite {
  const char* file = nullptr;
  uint32_t line = 0;
  bool write = false;
  int thread = -1;
  uint64_t step = 0;
};

// Formats and throws CheckFailure for a detected data race between two
// unordered accesses (`prior` happened earlier in this schedule).
[[noreturn]] void ReportRace(const AccessSite& prior,
                             const AccessSite& current);

// ---------------------------------------------------------------------
// Per-atomic-location metadata, embedded in check::Atomic<T>
// (src/check/shim.h). Values are kept by the shim in a parallel vector;
// this class holds only clocks, sequence stamps, and coherence floors.
// ---------------------------------------------------------------------
class LocationMeta {
 public:
  LocationMeta() { entries_.push_back(Entry{}); }  // initial value, seq 0

  size_t entries() const { return entries_.size(); }

  // A plain store: new entry whose message clock is the writer's clock
  // iff `release`; a relaxed store publishes nothing (and breaks any
  // release sequence headed earlier).
  void OnStore(bool release) {
    Entry e;
    e.seq = ++seq_;
    if (Active()) {
      e.write_clock = Tick();
      if (release) {
        e.msg = e.write_clock;
      }
      floor_[ThreadId()] = e.seq;
    }
    Push(e);
  }

  // An RMW (exchange, fetch_*, successful CAS): reads the newest entry
  // (joining its message clock iff `acquire`) and appends a new entry
  // continuing the release sequence.
  void OnRmw(bool acquire, bool release) {
    Entry e;
    e.seq = ++seq_;
    e.msg = entries_.back().msg;  // release-sequence continuation
    if (Active()) {
      if (acquire) {
        Clock().Join(entries_.back().msg);
      }
      e.write_clock = Tick();
      if (release) {
        e.msg.Join(e.write_clock);
      }
      floor_[ThreadId()] = e.seq;
    }
    Push(e);
  }

  // A failed CAS: a load of the newest entry with the failure order.
  void OnFailedCas(bool acquire) {
    if (!Active()) {
      return;
    }
    if (acquire) {
      Clock().Join(entries_.back().msg);
    }
    floor_[ThreadId()] = entries_.back().seq;
  }

  // A load. Picks which visible entry the load observes (a recorded
  // value decision when more than one is permitted and budget remains),
  // joins its message clock iff `acquire`, and advances the caller's
  // coherence floor. Returns how many entries *behind the newest* the
  // observed value is (0 = newest); the shim indexes its value vector
  // with it. seq_cst loads never go stale.
  uint32_t OnLoad(bool acquire, bool seq_cst) {
    if (!Active()) {
      return 0;
    }
    uint32_t back = 0;
    if (!seq_cst && entries_.size() > 1) {
      // Visible set, newest first: stop at the first entry below the
      // caller's coherence floor or superseded by a later entry whose
      // write the caller already happens-after.
      const int tid = ThreadId();
      const VectorClock& mine = Clock();
      uint32_t candidates = 1;  // the newest entry is always visible
      for (size_t i = entries_.size() - 1; i-- > 0;) {
        if (entries_[i].seq < floor_[tid] ||
            entries_[i + 1].write_clock.LeqOf(mine)) {
          break;
        }
        ++candidates;
      }
      if (candidates > 1 && TakeStaleBudget()) {
        back = ChooseReadIndex(candidates);
      }
    }
    const Entry& read = entries_[entries_.size() - 1 - back];
    if (acquire) {
      Clock().Join(read.msg);
    }
    if (read.seq > floor_[ThreadId()]) {
      floor_[ThreadId()] = read.seq;
    }
    return back;
  }

 private:
  struct Entry {
    VectorClock msg;          // clock published to acquire readers
    VectorClock write_clock;  // writer's clock at the write (visibility)
    uint64_t seq = 0;         // position in modification order
  };

  void Push(Entry e) {
    entries_.push_back(e);
    // Bounded history: evict the oldest beyond the configured depth
    // (+1 for the newest). The shim mirrors the eviction via entries().
    const size_t depth = static_cast<size_t>(HistoryDepth()) + 1;
    while (entries_.size() > depth) {
      entries_.erase(entries_.begin());
    }
  }

  std::vector<Entry> entries_;       // oldest..newest
  uint64_t seq_ = 0;                 // modification-order stamp source
  uint64_t floor_[kMaxThreads] = {};  // per-thread coherence floor (seq)
};

// ---------------------------------------------------------------------
// Shared<T>: instrumented non-atomic shared data. The model-check side
// of the hyperalloc::Shared<T> seam (src/base/shared.h). Two accesses
// from different threads, at least one a write, that are unordered by
// happens-before fail the execution with both sites and the schedule.
// ---------------------------------------------------------------------
class DataMeta {
 public:
  void OnRead(const std::source_location& loc) {
    if (!Active()) {
      return;
    }
    const int tid = ThreadId();
    CheckWriteOrdered(tid, loc, /*write=*/false);
    // Tick so the recorded epoch is nonzero: 0 is reserved for "accessed
    // only during setup", which happens-before every model thread.
    reads_[tid] = Tick().c[tid];
    read_sites_[tid] = Site(loc, /*write=*/false);
  }

  void OnWrite(const std::source_location& loc) {
    if (!Active()) {
      return;
    }
    const int tid = ThreadId();
    CheckWriteOrdered(tid, loc, /*write=*/true);
    const VectorClock& mine = Clock();
    for (unsigned u = 0; u < kMaxThreads; ++u) {
      if (static_cast<int>(u) != tid && reads_[u] != 0 &&
          mine.c[u] < reads_[u]) {
        ReportRace(read_sites_[u], Site(loc, /*write=*/true));
      }
    }
    write_tid_ = tid;
    write_stamp_ = Tick().c[tid];  // nonzero: 0 means setup-only
    write_site_ = Site(loc, /*write=*/true);
  }

 private:
  static AccessSite Site(const std::source_location& loc, bool write) {
    AccessSite s;
    s.file = loc.file_name();
    s.line = loc.line();
    s.write = write;
    s.thread = ThreadId();
    s.step = Step();
    return s;
  }

  void CheckWriteOrdered(int tid, const std::source_location& loc,
                         bool write) const {
    if (write_tid_ >= 0 && write_tid_ != tid &&
        Clock().c[write_tid_] < write_stamp_) {
      ReportRace(write_site_, Site(loc, write));
    }
  }

  // Last write epoch: writer's own clock component at the write. A
  // stamp of 0 (or tid -1) means "written only during setup", which
  // happens-before every model thread.
  int write_tid_ = -1;
  uint32_t write_stamp_ = 0;
  AccessSite write_site_;
  // Per-thread last-read epochs (0 = no model-thread read yet).
  uint32_t reads_[kMaxThreads] = {};
  AccessSite read_sites_[kMaxThreads];
};

template <typename T>
class Shared {
 public:
  Shared() : v_{} {}
  template <typename... Args>
  explicit Shared(Args&&... args) : v_(std::forward<Args>(args)...) {}

  Shared(const Shared&) = delete;
  Shared& operator=(const Shared&) = delete;

  const T& read(std::source_location loc =
                    std::source_location::current()) const {
    meta_.OnRead(loc);
    return v_;
  }

  T& write(std::source_location loc = std::source_location::current()) {
    meta_.OnWrite(loc);
    return v_;
  }

 private:
  T v_;
  mutable DataMeta meta_;
};

}  // namespace hyperalloc::check::mm

namespace hyperalloc::check {
// Scenario-facing spelling, mirroring check::Atomic.
template <typename T>
using Shared = mm::Shared<T>;
}  // namespace hyperalloc::check
