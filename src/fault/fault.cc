#include "src/fault/fault.h"

#include <cstdlib>
#include <sstream>

namespace hyperalloc::fault {

namespace {

constexpr const char* kSiteNames[kNumSites] = {
    "install",      "ept_map",   "ept_unmap",   "iommu_pin", "iommu_unpin",
    "balloon_vq",   "vmem_plug", "vmem_unplug", "host_reserve",
};

}  // namespace

const char* Name(Site site) {
  return kSiteNames[static_cast<unsigned>(site)];
}

const char* Name(Kind kind) {
  return kind == Kind::kTransient ? "transient" : "permanent";
}

bool SiteFromName(std::string_view name, Site* site) {
  for (unsigned i = 0; i < kNumSites; ++i) {
    if (name == kSiteNames[i]) {
      *site = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

bool Plan::Parse(const std::string& spec, Plan* plan, std::string* error) {
  for (SiteSpec& s : plan->sites) {
    s = SiteSpec{};
  }
  std::stringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) {
      continue;
    }
    bool permanent = false;
    if (entry.back() == '!') {
      permanent = true;
      entry.pop_back();
    }
    const size_t colon = entry.find(':');
    const size_t at = entry.find('@');
    if (colon == std::string::npos && at == std::string::npos) {
      if (error != nullptr) {
        *error = "entry '" + entry + "' has neither ':prob' nor '@step'";
      }
      return false;
    }
    const size_t sep = colon != std::string::npos ? colon : at;
    const std::string site_name = entry.substr(0, sep);

    std::vector<Site> targets;
    Site one;
    if (site_name == "all") {
      for (unsigned i = 0; i < kNumSites; ++i) {
        targets.push_back(static_cast<Site>(i));
      }
    } else if (SiteFromName(site_name, &one)) {
      targets.push_back(one);
    } else {
      if (error != nullptr) {
        *error = "unknown fault site '" + site_name + "'";
      }
      return false;
    }

    if (colon != std::string::npos) {
      char* end = nullptr;
      const std::string value = entry.substr(colon + 1);
      const double p = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        if (error != nullptr) {
          *error = "bad probability '" + value + "' (want [0,1])";
        }
        return false;
      }
      for (const Site target : targets) {
        SiteSpec& s = plan->spec(target);
        s.probability = p;
        s.kind = permanent ? Kind::kPermanent : Kind::kTransient;
      }
    } else {
      std::vector<uint64_t> steps;
      std::stringstream step_stream(entry.substr(at + 1));
      std::string step;
      while (std::getline(step_stream, step, '@')) {
        char* end = nullptr;
        const uint64_t index = std::strtoull(step.c_str(), &end, 10);
        if (end == step.c_str() || *end != '\0') {
          if (error != nullptr) {
            *error = "bad step index '" + step + "'";
          }
          return false;
        }
        steps.push_back(index);
      }
      for (size_t i = 1; i < steps.size(); ++i) {
        if (steps[i - 1] >= steps[i]) {
          if (error != nullptr) {
            *error = "step schedule must be strictly increasing";
          }
          return false;
        }
      }
      for (const Site target : targets) {
        SiteSpec& s = plan->spec(target);
        s.steps = steps;
        s.kind = permanent ? Kind::kPermanent : Kind::kTransient;
      }
    }
  }
  return true;
}

std::string Plan::ToString() const {
  std::ostringstream out;
  out << "seed=" << seed;
  bool first = true;
  for (unsigned i = 0; i < kNumSites; ++i) {
    const SiteSpec& s = sites[i];
    if (!s.active()) {
      continue;
    }
    // One space after the seed, then comma-separated entries: everything
    // after the space is a valid --fault-plan spec again.
    out << (first ? ' ' : ',') << kSiteNames[i];
    first = false;
    if (s.probability > 0.0) {
      out << ':' << s.probability;
    }
    for (const uint64_t step : s.steps) {
      out << '@' << step;
    }
    if (s.kind == Kind::kPermanent) {
      out << '!';
    }
  }
  return out.str();
}

}  // namespace hyperalloc::fault
