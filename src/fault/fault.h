// Deterministic, seed-driven fault injection for every fallible boundary
// of the de/inflation path: install hypercalls, balloon/virtio-mem queue
// ops, EPT/IOMMU map/unmap + flush, and host-pool admission.
//
// Determinism contract: whether the N-th operation at a given site fails
// is a pure function of (plan.seed, site, N) — a SplitMix64-style hash
// compared against the site's probability, plus an optional explicit step
// schedule. The per-site operation index is an atomic counter, so the
// schedule is byte-identical across runs for any given per-site operation
// order, regardless of thread interleaving between sites. A logged seed
// therefore reproduces the exact failure pattern (README "Fault
// injection").
//
// The injector only *decides*; the recovery semantics (bounded retry with
// virtual-time exponential backoff, per-request timeouts, rollback,
// quarantine) live at the call sites (DESIGN.md §4.9).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/check.h"

namespace hyperalloc::fault {

// Every injection site, one per fallible boundary. Kept dense so the
// injector can hold per-site state in a flat array.
enum class Site : uint8_t {
  kInstallHypercall,  // HyperAlloc install hypercall (core/hyperalloc.cc)
  kEptMap,            // EPT populate/map (hv/ept.cc)
  kEptUnmap,          // EPT unmap / madvise(DONTNEED) (hv/ept.cc)
  kIommuPin,          // VFIO map + pin (hv/iommu.h)
  kIommuUnpin,        // VFIO unmap + IOTLB flush (hv/iommu.h)
  kBalloonHypercall,  // virtio-balloon virtqueue kick (balloon/)
  kVmemPlug,          // virtio-mem plug request (vmem/)
  kVmemUnplug,        // virtio-mem unplug request (vmem/)
  kHostReserve,       // host frame-pool admission (hv/host_memory.h)
};
inline constexpr unsigned kNumSites = 9;

const char* Name(Site site);
bool SiteFromName(std::string_view name, Site* site);

// The typed error taxonomy. Transient faults are worth retrying (EAGAIN,
// a full virtqueue, a transiently exhausted pool); permanent faults are
// not (a wedged device, an unrecoverable mapping error) and push the
// affected frames toward quarantine. Timeouts are not a Kind: they arise
// at the recovery layer when retries/backoff exceed the request deadline.
enum class Kind : uint8_t { kTransient, kPermanent };

const char* Name(Kind kind);

// Per-site failure specification.
struct SiteSpec {
  // Bernoulli per-operation failure probability in [0, 1].
  double probability = 0.0;
  Kind kind = Kind::kTransient;
  // Explicit schedule: 0-based per-site operation indices that fail
  // (in addition to the probabilistic decisions). Must be sorted.
  std::vector<uint64_t> steps;

  bool active() const { return probability > 0.0 || !steps.empty(); }
};

// A full fault plan: one 64-bit seed plus per-site specs. Parseable from
// the --fault-plan spec grammar:
//   plan    := entry (',' entry)*
//   entry   := site ':' probability            e.g. "ept_unmap:0.01"
//            | site '@' step ('@' step)*       e.g. "install@0@7"
//            | site ':' probability '!'        '!' = permanent
//            | site '@' step '!'
//            | "all" ':' probability           every site
// Site names: install, ept_map, ept_unmap, iommu_pin, iommu_unpin,
// balloon_vq, vmem_plug, vmem_unplug, host_reserve.
struct Plan {
  uint64_t seed = 0;
  std::array<SiteSpec, kNumSites> sites;

  SiteSpec& spec(Site site) { return sites[static_cast<unsigned>(site)]; }
  const SiteSpec& spec(Site site) const {
    return sites[static_cast<unsigned>(site)];
  }

  bool enabled() const {
    for (const SiteSpec& s : sites) {
      if (s.active()) {
        return true;
      }
    }
    return false;
  }

  // Parses the spec grammar above. Returns false (and fills *error) on a
  // malformed spec; *plan keeps its seed but gets fresh site specs.
  static bool Parse(const std::string& spec, Plan* plan, std::string* error);

  // Round-trippable textual form (for logs: seed + active sites).
  std::string ToString() const;
};

// Thread-safe decision engine over a Plan. Each Poll() claims the next
// per-site operation index and evaluates the deterministic decision
// function for it.
class Injector {
 public:
  Injector() = default;  // disabled: every Poll returns nullopt
  explicit Injector(const Plan& plan) : plan_(plan) {
    enabled_ = plan.enabled();
    for (const SiteSpec& s : plan_.sites) {
      for (size_t i = 1; i < s.steps.size(); ++i) {
        HA_CHECK(s.steps[i - 1] < s.steps[i]);  // sorted, unique
      }
    }
  }

  bool enabled() const { return enabled_; }
  const Plan& plan() const { return plan_; }

  // Consult at a fallible boundary: claims this site's next operation
  // index and returns the failure kind if that operation is scheduled to
  // fail, nullopt otherwise.
  std::optional<Kind> Poll(Site site) {
    State& s = state_[static_cast<unsigned>(site)];
    const uint64_t index =
        s.ops.fetch_add(1, std::memory_order_relaxed);
    if (!enabled_) {
      return std::nullopt;
    }
    const SiteSpec& spec = plan_.spec(site);
    if (!spec.active() || !Decide(site, index, spec)) {
      return std::nullopt;
    }
    s.injected.fetch_add(1, std::memory_order_relaxed);
    return spec.kind;
  }

  // Pure decision function — also usable to precompute a schedule
  // (tests assert byte-identical schedules this way).
  bool WouldFail(Site site, uint64_t index) const {
    const SiteSpec& spec = plan_.spec(site);
    return spec.active() && Decide(site, index, spec);
  }

  uint64_t ops(Site site) const {
    return state_[static_cast<unsigned>(site)].ops.load(
        std::memory_order_relaxed);
  }
  uint64_t injected(Site site) const {
    return state_[static_cast<unsigned>(site)].injected.load(
        std::memory_order_relaxed);
  }
  uint64_t injected_total() const {
    uint64_t total = 0;
    for (const State& s : state_) {
      total += s.injected.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Quarantine trigger hook. The recovery layers that decide to
  // quarantine (core/hyperalloc.cc frame/VM escalation) notify the VM's
  // injector; pollers above the VM — the fleet telemetry pipeline at its
  // epoch barrier — read the counts back without reaching into backend
  // internals. Notifications happen on the VM's own simulation thread;
  // barrier reads are quiesced, so the counts are determinism-safe.
  void NotifyQuarantineFrame() {
    quarantined_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  void NotifyQuarantineVm() {
    quarantined_vm_.store(true, std::memory_order_relaxed);
  }
  uint64_t quarantined_frames() const {
    return quarantined_frames_.load(std::memory_order_relaxed);
  }
  bool quarantined_vm() const {
    return quarantined_vm_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ull;

  // SplitMix64 finalizer (same mixing constants as base/rng.h).
  static uint64_t Mix(uint64_t x) {
    x += kGolden;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  bool Decide(Site site, uint64_t index, const SiteSpec& spec) const {
    for (const uint64_t step : spec.steps) {
      if (step == index) {
        return true;
      }
      if (step > index) {
        break;  // sorted
      }
    }
    if (spec.probability <= 0.0) {
      return false;
    }
    const uint64_t salted =
        Mix(plan_.seed ^ ((static_cast<uint64_t>(site) + 1) * kGolden));
    const uint64_t h = Mix(salted ^ index);
    // 53 uniform mantissa bits -> [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < spec.probability;
  }

  struct alignas(64) State {
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> injected{0};
  };

  bool enabled_ = false;
  Plan plan_;
  std::array<State, kNumSites> state_;
  std::atomic<uint64_t> quarantined_frames_{0};
  std::atomic<bool> quarantined_vm_{false};
};

// Null-safe convenience wrapper: the idiom every call site uses, so an
// unconfigured component (injector == nullptr) costs one branch.
inline std::optional<Kind> Poll(Injector* injector, Site site) {
  if (injector == nullptr || !injector->enabled()) {
    return std::nullopt;
  }
  return injector->Poll(site);
}

// Bounded-retry policy with virtual-time exponential backoff and an
// optional per-request deadline. The defaults match DESIGN.md §4.9.
struct RetryPolicy {
  // Total tries per operation, including the first (>= 1).
  unsigned max_attempts = 4;
  // Backoff before 0-based retry r: initial * multiplier^r, capped.
  uint64_t backoff_initial_ns = 20'000;  // 20 us
  double backoff_multiplier = 2.0;
  uint64_t backoff_cap_ns = 1'000'000;  // 1 ms
  // Per-resize-request deadline in virtual ns; 0 disables timeouts.
  uint64_t request_timeout_ns = 0;

  uint64_t BackoffNs(unsigned retry) const {
    double ns = static_cast<double>(backoff_initial_ns);
    for (unsigned i = 0; i < retry; ++i) {
      ns *= backoff_multiplier;
      if (ns >= static_cast<double>(backoff_cap_ns)) {
        return backoff_cap_ns;
      }
    }
    const uint64_t out = static_cast<uint64_t>(ns);
    return out < backoff_cap_ns ? out : backoff_cap_ns;
  }
};

}  // namespace hyperalloc::fault
