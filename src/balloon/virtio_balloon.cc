#include "src/balloon/virtio_balloon.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace hyperalloc::balloon {

VirtioBalloon::VirtioBalloon(guest::GuestVm* vm, const BalloonConfig& config)
    : vm_(vm), config_(config), sim_(vm->simulation()) {
  HA_CHECK(vm != nullptr);
  HA_CHECK(config.vq_capacity > 0);
  // virtio-balloon is not DMA-safe (§2): refuse passthrough configs.
  HA_CHECK(!vm->config().vfio);
  if (config.deflate_on_oom_bytes > 0) {
    vm->SetOomNotifier([this] {
      if (pages_.empty()) {
        return false;
      }
      // Synchronous emergency deflation of a chunk of the balloon.
      const uint64_t target_frames =
          ballooned_frames_ -
          std::min<uint64_t>(ballooned_frames_,
                             config_.deflate_on_oom_bytes / kFrameSize);
      ++oom_deflations_;
      HA_COUNT("balloon.oom_deflate");
      trace::Span span(trace::Layer::kBackend, "balloon.oom_deflate");
      std::vector<FrameId> base_frames;
      while (ballooned_frames_ > target_frames && !pages_.empty()) {
        const Ballooned b = pages_.back();
        pages_.pop_back();
        span.AddFrames(1ull << b.order);
        if (b.order == kHugeOrder) {
          span.AddHugeFrames(kFramesPerHuge);
        }
        hv::Charge(sim_, b.order == kHugeOrder
                             ? vm_->costs().balloon_deflate_2m_ns
                             : vm_->costs().balloon_deflate_4k_ns);
        if (b.order == 0) {
          base_frames.push_back(b.frame);
        } else {
          vm_->Free(b.frame, b.order, config_.driver_cpu);
        }
        ballooned_frames_ -= 1ull << b.order;
        HA_COUNT_N("balloon.deflate_frames", 1ull << b.order);
        HA_TRACE_EVENT(trace::Category::kBalloon, trace::Op::kDeflate,
                       b.frame, b.order);
      }
      vm_->FreeBatch(base_frames, 0, config_.driver_cpu);
      return true;
    });
  }
}

uint64_t VirtioBalloon::ballooned_bytes() const {
  return ballooned_frames_ * kFrameSize;
}

uint64_t VirtioBalloon::limit_bytes() const {
  return vm_->config().memory_bytes - ballooned_bytes();
}

void VirtioBalloon::ChargeBackoff(unsigned retry) {
  const uint64_t ns = config_.retry.BackoffNs(retry);
  ++fault_retries_;
  if (trace::Span* span = trace::Span::Current()) {
    span->AddRetry();
  }
  if (busy_) {
    ++outcome_.retries;
    request_span_.AddRetry();
  }
  HA_COUNT("balloon.fault_retry");
  HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRetry, retry, ns);
  cpu_.host_user_ns +=
      hv::ChargeTraced(sim_, "balloon.fault_backoff_ns", ns);
}

void VirtioBalloon::NoteFault() {
  ++faults_;
  if (trace::Span* span = trace::Span::Current()) {
    span->AddFault();
  }
  if (busy_) {
    ++outcome_.faults;
    request_span_.AddFault();
  }
  HA_COUNT("balloon.fault");
}

bool VirtioBalloon::RequestTimedOut() const {
  return request_deadline_ != 0 && sim_->now() >= request_deadline_;
}

bool VirtioBalloon::TryHypercall(uint64_t batch_size) {
  fault::Injector* injector = vm_->fault_injector();
  const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ChargeBackoff(attempt - 1);
    }
    if (const auto kind =
            fault::Poll(injector, fault::Site::kBalloonHypercall)) {
      NoteFault();
      HA_COUNT("fault.balloon_hypercall");
      HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kInject, batch_size,
                     0);
      if (*kind == fault::Kind::kPermanent) {
        return false;
      }
      continue;
    }
    cpu_.host_user_ns += hv::ChargeTraced(sim_, "balloon.hypercall_ns",
                                          vm_->costs().hypercall_ns);
    HA_COUNT("balloon.hypercall");
    HA_TRACE_EVENT(trace::Category::kBalloon, trace::Op::kHypercall,
                   batch_size, 0);
    return true;
  }
  return false;
}

void VirtioBalloon::Request(const hv::ResizeRequest& request) {
  HA_CHECK(!busy_);
  busy_ = true;
  const uint64_t total = vm_->config().memory_bytes;
  HA_CHECK(request.target_bytes <= total);
  outcome_ = hv::ResizeOutcome{};
  outcome_.target_bytes = request.target_bytes;
  request_deadline_ =
      request.deadline_ns > 0 ? sim_->now() + request.deadline_ns
      : config_.retry.request_timeout_ns > 0
          ? sim_->now() + config_.retry.request_timeout_ns
          : 0;
  const uint64_t target_frames = (total - request.target_bytes) / kFrameSize;
  const bool inflate = target_frames > ballooned_frames_;
  request_span_.Start(inflate ? "request.inflate" : "request.deflate");
  request_span_.AddFrames(inflate ? target_frames - ballooned_frames_
                                  : ballooned_frames_ - target_frames);
  auto finish = [this, done = request.done, on_outcome = request.on_outcome,
                 inflate, target = request.target_bytes] {
    outcome_.achieved_bytes = limit_bytes();
    outcome_.complete = inflate ? outcome_.achieved_bytes <= target
                                : outcome_.achieved_bytes >= target;
    request_span_.Finish();
    busy_ = false;
    request_deadline_ = 0;
    if (on_outcome) {
      on_outcome(outcome_);
    }
    if (done) {
      done();
    }
  };
  if (inflate) {
    InflateSlice(target_frames, std::move(finish));
  } else {
    DeflateSlice(target_frames, std::move(finish));
  }
}

void VirtioBalloon::InflateSlice(uint64_t target_frames,
                                 std::function<void()> done) {
  trace::ScopedContext request_context(request_span_.context());
  trace::Span slice(trace::Layer::kBackend, "balloon.inflate_slice");
  if (RequestTimedOut()) {
    outcome_.timed_out = true;
    HA_COUNT("balloon.request_timeout");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kTimeout,
                   target_frames, ballooned_frames_);
    done();  // partial inflate: the balloon simply stays smaller
    return;
  }
  const sim::Time t0 = sim_->now();
  std::vector<Ballooned> batch;
  const sim::Time guest_start = sim_->now();

  // Guest driver: allocate pages and queue their PFNs (one virtqueue
  // batch per slice).
  {
    trace::Span guest(trace::Layer::kGuest, "balloon.guest_alloc");
    while (batch.size() < config_.vq_capacity &&
           ballooned_frames_ < target_frames) {
      if (config_.huge &&
          target_frames - ballooned_frames_ >= kFramesPerHuge) {
        const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kMovable,
                                             config_.driver_cpu,
                                             /*allow_oom_notify=*/false);
        if (r.ok()) {
          hv::Charge(sim_, vm_->costs().guest_alloc_2m_ns);
          hv::Charge(sim_, vm_->costs().virtqueue_element_ns);
          batch.push_back({*r, kHugeOrder});
          ballooned_frames_ += kFramesPerHuge;
          HA_COUNT_N("balloon.inflate_frames", kFramesPerHuge);
          HA_TRACE_EVENT(trace::Category::kBalloon, trace::Op::kInflate, *r,
                         kHugeOrder);
          guest.AddFrames(kFramesPerHuge);
          guest.AddHugeFrames(kFramesPerHuge);
          continue;
        }
        // Fragmentation fallback (Hu et al. split path): 4 KiB pages via
        // the batched train below.
      }
      // Order-0 train (sub-huge tail or fragmentation fallback): one
      // AllocBatch fills the rest of the virtqueue via word-at-a-time
      // claims instead of per-frame Get transactions. Costs charge at
      // batch granularity (n per-frame costs, identical virtual time).
      const uint64_t want =
          std::min<uint64_t>(config_.vq_capacity - batch.size(),
                             target_frames - ballooned_frames_);
      std::vector<FrameId> frames;
      const unsigned got = vm_->AllocBatch(
          0, static_cast<unsigned>(want), AllocType::kMovable,
          config_.driver_cpu, &frames, /*allow_oom_notify=*/false);
      if (got == 0) {
        break;  // guest out of reclaimable memory; stop inflating
      }
      hv::Charge(sim_, got * (vm_->costs().guest_alloc_4k_ns +
                              vm_->costs().virtqueue_element_ns));
      for (const FrameId f : frames) {
        batch.push_back({f, 0});
        HA_TRACE_EVENT(trace::Category::kBalloon, trace::Op::kInflate, f, 0);
      }
      ballooned_frames_ += got;
      HA_COUNT_N("balloon.inflate_frames", got);
      guest.AddFrames(got);
      if (got < want) {
        break;  // allocator ran dry mid-train
      }
    }
  }
  cpu_.guest_ns += sim_->now() - guest_start;

  if (batch.empty()) {
    done();
    return;
  }

  // One hypercall delivers the batch; QEMU discards each entry.
  if (!TryHypercall(batch.size())) {
    // Hypercall retries exhausted: the guest driver frees the batch back
    // (the normal deflate path) and the request finishes partial — the
    // balloon holds exactly the pages of the prior slices. Order-0
    // entries free in one batched train.
    std::vector<FrameId> base_frames;
    for (const Ballooned& b : batch) {
      cpu_.guest_ns += hv::Charge(sim_, b.order == kHugeOrder
                                            ? vm_->costs().guest_free_2m_ns
                                            : vm_->costs().guest_free_4k_ns);
      if (b.order == 0) {
        base_frames.push_back(b.frame);
      } else {
        vm_->Free(b.frame, b.order, config_.driver_cpu);
      }
      ballooned_frames_ -= 1ull << b.order;
    }
    vm_->FreeBatch(base_frames, 0, config_.driver_cpu);
    ++outcome_.rollbacks;
    HA_COUNT("balloon.fault_rollback");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRollback,
                   batch.size(), 0);
    vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);
    done();
    return;
  }
  // The batch reached the host: account its virtqueue entries by
  // granularity (a rolled-back batch never counts).
  for (const Ballooned& b : batch) {
    if (b.order == kHugeOrder) {
      ++hypercall_huge_pfns_;
    } else {
      ++hypercall_base_pfns_;
    }
  }
  HostDiscard(batch);
  pages_.insert(pages_.end(), batch.begin(), batch.end());

  // The balloon kthread monopolized its vCPU for the whole slice.
  vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);

  const bool more = ballooned_frames_ < target_frames;
  if (!more) {
    done();
    return;
  }
  sim_->After(0, [this, target_frames, done = std::move(done)]() mutable {
    InflateSlice(target_frames, std::move(done));
  });
}

void VirtioBalloon::HostDiscard(const std::vector<Ballooned>& batch) {
  // The host-side half of a batch is one EPT-layer span: per-entry
  // madvise syscalls plus the unmap of whatever was still mapped.
  trace::Span span(trace::Layer::kEpt, "balloon.host_discard");
  const sim::Time t0 = sim_->now();
  uint64_t sys_ns = 0;
  uint64_t shootdown_allcpu_ns = 0;
  for (const Ballooned& b : batch) {
    const uint64_t frames = 1ull << b.order;
    span.AddFrames(frames);
    if (b.order == kHugeOrder) {
      span.AddHugeFrames(frames);
    }
    const uint64_t mapped = vm_->ept().CountMapped(b.frame, frames);
    // QEMU issues one madvise(DONTNEED) per entry, mapped or not.
    sys_ns += vm_->costs().madvise_syscall_ns;
    ++madvise_calls_;
    HA_COUNT("balloon.madvise");
    HA_TRACE_EVENT(trace::Category::kBalloon, trace::Op::kMadvise, b.frame,
                   frames);
    if (mapped > 0) {
      bool unmapped = false;
      const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);
      for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          ChargeBackoff(attempt - 1);
        }
        if (vm_->ept().Unmap(b.frame, frames) != hv::Ept::kFaultInjected) {
          unmapped = true;
          break;
        }
        NoteFault();
        if (vm_->ept().last_injected_kind() == fault::Kind::kPermanent) {
          break;
        }
      }
      if (unmapped) {
        if (b.order == kHugeOrder) {
          sys_ns += vm_->costs().madvise_per_2m_ns +
                    vm_->costs().tlb_shootdown_ns;
          shootdown_allcpu_ns += vm_->costs().shootdown_allcpu_2m_ns;
        } else {
          sys_ns += vm_->costs().madvise_per_4k_ns;
          shootdown_allcpu_ns += vm_->costs().shootdown_allcpu_4k_ns;
        }
      }
      // else: the madvise never took effect — the entry stays ballooned
      // but host-backed (no host memory is freed for it). Nothing to
      // roll back: deflating hands the still-mapped frame straight back.
    }
  }
  cpu_.host_sys_ns += hv::Charge(sim_, sys_ns);
  const sim::Time t1 = sim_->now();
  if (shootdown_allcpu_ns > 0 && t1 > t0) {
    vm_->sink().OnAllCpusSteal(
        t0, t1,
        static_cast<double>(shootdown_allcpu_ns) /
            static_cast<double>(t1 - t0));
  }
}

void VirtioBalloon::DeflateSlice(uint64_t target_frames,
                                 std::function<void()> done) {
  trace::ScopedContext request_context(request_span_.context());
  // Device processing and guest frees alternate per element; rather than
  // a span per element, two slice-length spans take the charges of their
  // layer (ChargeSpan targets them explicitly).
  trace::Span slice(trace::Layer::kBackend, "balloon.deflate_slice");
  trace::Span guest(trace::Layer::kGuest, "balloon.guest_free");
  if (RequestTimedOut()) {
    outcome_.timed_out = true;
    HA_COUNT("balloon.request_timeout");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kTimeout,
                   target_frames, ballooned_frames_);
    done();
    return;
  }
  const sim::Time t0 = sim_->now();
  unsigned elems = 0;
  // Order-0 frees accumulate into one end-of-slice FreeBatch (one CAS
  // per bit-field word); charges and events stay per element, so the
  // virtual-time totals and span attribution are unchanged.
  std::vector<FrameId> base_frames;
  while (elems < config_.vq_capacity && ballooned_frames_ > target_frames &&
         !pages_.empty()) {
    const Ballooned b = pages_.back();
    pages_.pop_back();
    // Per-element deflate processing (QEMU side) ...
    const uint64_t deflate_ns = b.order == kHugeOrder
                                    ? vm_->costs().balloon_deflate_2m_ns
                                    : vm_->costs().balloon_deflate_4k_ns;
    cpu_.host_user_ns += hv::ChargeSpan(sim_, &slice, deflate_ns);
    // ... and the guest returning the page to its allocator. The memory
    // itself is repopulated lazily on the next EPT fault.
    const uint64_t free_ns = b.order == kHugeOrder
                                 ? vm_->costs().guest_free_2m_ns
                                 : vm_->costs().guest_free_4k_ns;
    cpu_.guest_ns += hv::ChargeSpan(sim_, &guest, free_ns);
    if (b.order == 0) {
      base_frames.push_back(b.frame);
    } else {
      vm_->Free(b.frame, b.order, config_.driver_cpu);
    }
    ballooned_frames_ -= 1ull << b.order;
    guest.AddFrames(1ull << b.order);
    if (b.order == kHugeOrder) {
      guest.AddHugeFrames(kFramesPerHuge);
    }
    HA_COUNT_N("balloon.deflate_frames", 1ull << b.order);
    HA_TRACE_EVENT(trace::Category::kBalloon, trace::Op::kDeflate, b.frame,
                   b.order);
    ++elems;
  }
  vm_->FreeBatch(base_frames, 0, config_.driver_cpu);
  vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);

  if (ballooned_frames_ <= target_frames || pages_.empty()) {
    done();
    return;
  }
  sim_->After(0, [this, target_frames, done = std::move(done)]() mutable {
    DeflateSlice(target_frames, std::move(done));
  });
}

void VirtioBalloon::StartAuto() {
  if (auto_running_) {
    return;
  }
  auto_running_ = true;
  sim_->After(config_.reporting_delay, [this] { ReportCycle(); });
}

void VirtioBalloon::StopAuto() { auto_running_ = false; }

void VirtioBalloon::ReportCycle() {
  if (!auto_running_) {
    return;
  }
  trace::ScopedRoot report_root;
  trace::Span span(trace::Layer::kBackend, "balloon.report_cycle");
  const sim::Time t0 = sim_->now();
  const unsigned order = config_.reporting_order;
  const uint64_t block_frames = 1ull << order;

  // Pull one batch (REPORTING_CAPACITY blocks) from the buddy free lists.
  std::vector<Ballooned> batch;
  std::vector<guest::Zone*> zone_of;
  for (guest::Zone& zone : vm_->zones()) {
    if (zone.buddy == nullptr) {
      continue;  // free-page reporting is a buddy mechanism
    }
    while (batch.size() < config_.reporting_capacity) {
      const std::optional<FrameId> local = zone.buddy->PopUnreported(order);
      if (!local.has_value()) {
        break;
      }
      cpu_.guest_ns += hv::Charge(sim_, vm_->costs().guest_alloc_4k_ns +
                                            vm_->costs().virtqueue_element_ns);
      batch.push_back({zone.start + *local, order});
      zone_of.push_back(&zone);
      span.AddFrames(block_frames);
      if (order == kHugeOrder) {
        span.AddHugeFrames(block_frames);
      }
    }
    if (batch.size() >= config_.reporting_capacity) {
      break;
    }
  }

  if (batch.empty()) {
    // Lists exhausted of unreported blocks: wait for the next cycle.
    sim_->After(config_.reporting_delay, [this] { ReportCycle(); });
    return;
  }

  if (!TryHypercall(batch.size())) {
    // Reporting hypercall failed: free the blocks back *unreported* so
    // the next cycle naturally retries them.
    for (size_t i = 0; i < batch.size(); ++i) {
      guest::Zone& zone = *zone_of[i];
      const auto err = zone.buddy->Free(config_.driver_cpu,
                                        batch[i].frame - zone.start, order);
      HA_CHECK(!err.has_value());
      cpu_.guest_ns += hv::Charge(sim_, vm_->costs().guest_free_4k_ns);
    }
    HA_COUNT("balloon.fault_rollback");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRollback,
                   batch.size(), order);
    vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);
    sim_->After(config_.reporting_delay, [this] { ReportCycle(); });
    return;
  }
  ++hypercalls_;
  if (order == kHugeOrder) {
    hypercall_huge_pfns_ += batch.size();
  } else {
    hypercall_base_pfns_ += batch.size();
  }
  HostDiscard(batch);

  // Hand the blocks back to the allocator, remembering they are reported.
  for (size_t i = 0; i < batch.size(); ++i) {
    guest::Zone& zone = *zone_of[i];
    const FrameId local = batch[i].frame - zone.start;
    zone.buddy->MarkReported(local, order);
    const auto err = zone.buddy->Free(config_.driver_cpu, local, order);
    HA_CHECK(!err.has_value());
    cpu_.guest_ns += hv::Charge(sim_, vm_->costs().guest_free_4k_ns);
    reported_bytes_ += block_frames * kFrameSize;
  }
  vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);

  // Keep draining until no unreported blocks remain, yielding between
  // batches; then sleep for the configured delay.
  sim_->After(0, [this] { ReportCycle(); });
}

}  // namespace hyperalloc::balloon
