// virtio-balloon (Linux/QEMU memory ballooning) and the huge-page variant
// of Hu et al. [24], including the automatic *free-page reporting* mode.
//
// Manual mode (inflate/deflate):
//  * Inflate: the guest balloon driver allocates guest frames (inducing
//    memory pressure: page-cache eviction and allocator-cache purging),
//    sends the PFNs through a virtqueue (aggregated, up to 256 per
//    hypercall), and QEMU madvise(DONTNEED)s them one by one — the
//    per-page host cost that makes 4 KiB ballooning slow (§5.3).
//  * Deflate: PFNs are returned to the guest allocator one by one; the
//    memory is repopulated lazily on the next EPT fault.
//
// Auto mode (free-page reporting): every REPORTING_DELAY, up to
// REPORTING_CAPACITY free blocks of REPORTING_ORDER are pulled from the
// buddy free lists, reported, madvised away, and handed back to the
// allocator *still logically free* (they repopulate on fault when
// reallocated). Exactly the knobs the paper sweeps in Fig. 7.
//
// Not DMA-safe: reclaimed frames stay allocatable without any install
// step, so a passthrough device can be pointed at an unbacked frame (§2).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/fault/fault.h"
#include "src/guest/guest_vm.h"
#include "src/hv/deflator.h"
#include "src/sim/simulation.h"
#include "src/trace/span.h"

namespace hyperalloc::balloon {

struct BalloonConfig {
  // false: classic 4 KiB virtio-balloon; true: 2 MiB huge-page ballooning.
  bool huge = false;
  // Free-page reporting knobs (paper Fig. 7: o / d / c).
  unsigned reporting_order = 0;
  sim::Time reporting_delay = 2 * sim::kSec;
  unsigned reporting_capacity = 32;
  // vCPU the balloon kthread runs on.
  unsigned driver_cpu = 0;
  // Virtqueue batch size (PFNs per hypercall).
  unsigned vq_capacity = 256;
  // Deflate-on-OOM: when the guest is about to run out of memory, the
  // balloon releases this many bytes instead (0 disables the feature).
  uint64_t deflate_on_oom_bytes = 64 * kMiB;
  // Fault recovery (DESIGN.md §4.9): bounded retry with virtual-time
  // exponential backoff for the balloon hypercall and host madvise, plus
  // the optional per-request deadline.
  fault::RetryPolicy retry;
};

class VirtioBalloon : public hv::Deflator {
 public:
  VirtioBalloon(guest::GuestVm* vm, const BalloonConfig& config);

  hv::DeflatorCaps caps() const override {
    return {.name = config_.huge ? "virtio-balloon-huge" : "virtio-balloon",
            .dma_safe = false,
            .supports_auto = true,
            .granularity_bytes = config_.huge ? kHugeSize : kFrameSize};
  }

  void Request(const hv::ResizeRequest& request) override;
  uint64_t limit_bytes() const override;
  bool busy() const override { return busy_; }

  void StartAuto() override;
  void StopAuto() override;

  const hv::CpuAccounting& cpu() const override { return cpu_; }

  uint64_t ballooned_bytes() const;
  uint64_t oom_deflations() const { return oom_deflations_; }
  uint64_t total_hypercalls() const { return hypercalls_; }
  uint64_t total_madvise_calls() const { return madvise_calls_; }
  uint64_t reported_bytes_total() const { return reported_bytes_; }

  // Huge-PFN batch accounting (DESIGN.md §4.14): virtqueue entries
  // enqueued across inflate and reporting hypercalls, split by
  // granularity. A huge entry is ONE PFN covering 512 base frames, so
  // the share of *memory* that moved at 2 MiB granularity is
  // huge * 512 / (huge * 512 + base).
  uint64_t hypercall_huge_pfns() const { return hypercall_huge_pfns_; }
  uint64_t hypercall_base_pfns() const { return hypercall_base_pfns_; }
  double HugePfnShare() const {
    const uint64_t huge = hypercall_huge_pfns_ * kFramesPerHuge;
    const uint64_t total = huge + hypercall_base_pfns_;
    return total == 0 ? 0.0
                      : static_cast<double>(huge) /
                            static_cast<double>(total);
  }

  // Fault-recovery statistics (DESIGN.md §4.9).
  uint64_t faults_seen() const { return faults_; }
  uint64_t fault_retries() const { return fault_retries_; }

 private:
  struct Ballooned {
    FrameId frame;
    unsigned order;
  };

  void InflateSlice(uint64_t target_frames, std::function<void()> done);
  void DeflateSlice(uint64_t target_frames, std::function<void()> done);
  void ReportCycle();

  // Host-side processing of one batch of reclaimed blocks.
  void HostDiscard(const std::vector<Ballooned>& batch);

  // Issues the balloon hypercall (charge + counter + trace event),
  // retrying injected transient faults with backoff. Returns false when
  // retries are exhausted or the fault is permanent — the caller rolls
  // its batch back.
  bool TryHypercall(uint64_t batch_size);
  void ChargeBackoff(unsigned retry);
  void NoteFault();
  bool RequestTimedOut() const;

  guest::GuestVm* vm_;
  BalloonConfig config_;
  sim::Simulation* sim_;

  std::vector<Ballooned> pages_;  // current balloon contents
  uint64_t ballooned_frames_ = 0;
  bool busy_ = false;
  bool auto_running_ = false;

  hv::CpuAccounting cpu_;
  trace::RequestSpan request_span_;
  uint64_t oom_deflations_ = 0;
  uint64_t hypercalls_ = 0;
  uint64_t madvise_calls_ = 0;
  uint64_t reported_bytes_ = 0;
  uint64_t hypercall_huge_pfns_ = 0;
  uint64_t hypercall_base_pfns_ = 0;
  sim::Time request_deadline_ = 0;  // 0 = no deadline
  uint64_t faults_ = 0;
  uint64_t fault_retries_ = 0;
};

}  // namespace hyperalloc::balloon
