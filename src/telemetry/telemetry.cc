#include "src/telemetry/telemetry.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "src/base/check.h"
#include "src/trace/span.h"

namespace hyperalloc::telemetry {

const char* Name(AlertKind kind) {
  switch (kind) {
    case AlertKind::kLatencyBurn:
      return "latency_burn";
    case AlertKind::kPressureBurn:
      return "pressure_burn";
  }
  return "?";
}

const char* Name(FlightTrigger trigger) {
  switch (trigger) {
    case FlightTrigger::kAlert:
      return "alert";
    case FlightTrigger::kQuarantine:
      return "quarantine";
    case FlightTrigger::kRejectSpike:
      return "reject_spike";
  }
  return "?";
}

#if HYPERALLOC_TRACE

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

// Word-at-a-time FNV-1a variant: one xor+multiply per 64-bit value
// instead of eight. The digest is only ever compared for equality
// between runs of the same build, and the hot path mixes ~13 fields per
// VM per epoch — at 1024 VMs the byte-wise form alone costs hundreds of
// microseconds per epoch (a dependent-multiply chain), which blows the
// <5% telemetry wall-overhead budget.
void MixInto(uint64_t* h, uint64_t v) {
  *h ^= v;
  *h *= kFnvPrime;
}

void MixInto(uint64_t* h, double v) { MixInto(h, std::bit_cast<uint64_t>(v)); }

double Gib(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

double Seconds(sim::Time t) {
  return static_cast<double>(t) / static_cast<double>(sim::kSec);
}

// Counter prefixes whose values are pure functions of the per-VM event
// streams (and therefore of virtual time). Host-pool refill/rebalance
// activity depends on the worker-thread interleaving and must never
// enter the flight stream — there is deliberately no "hostpool." or
// "pool." entry here.
constexpr const char* kCounterAllowlist[] = {
    "monitor.", "fault.", "llfree.", "ept.",
    "iommu.",   "balloon.", "vmem.",  "guest.",
};

bool Allowlisted(const std::string& name) {
  for (const char* prefix : kCounterAllowlist) {
    if (name.compare(0, std::strlen(prefix), prefix) == 0) {
      return true;
    }
  }
  return false;
}

void Append(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void Append(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  HA_CHECK(n >= 0 && n < static_cast<int>(sizeof(buffer)));
  out->append(buffer, static_cast<size_t>(n));
}

}  // namespace

void Pipeline::Burn::Push(double error, unsigned slow_epochs) {
  if (window.size() < slow_epochs) {
    window.resize(slow_epochs, 0.0);
  }
  window[next] = error;
  next = (next + 1) % window.size();
  filled = std::min<uint64_t>(filled + 1, window.size());
}

double Pipeline::Burn::Rate(unsigned epochs, double budget) const {
  if (filled == 0 || budget <= 0.0) {
    return 0.0;
  }
  // Mean error fraction over the last min(epochs, filled) samples.
  const uint64_t n = std::min<uint64_t>(epochs, filled);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += window[(next + window.size() - 1 - i) % window.size()];
  }
  return sum / static_cast<double>(n) / budget;
}

Pipeline::Pipeline(const TelemetryOptions& options, uint64_t vms,
                   unsigned pool_shards, sim::Time epoch)
    : options_(options),
      vms_(vms),
      shards_(options.shards != 0 ? options.shards
                                  : std::max(1u, pool_shards)),
      epoch_period_(epoch) {
  enabled_ = options_.enabled && vms_ > 0;
  if (!enabled_) {
    return;
  }
  quarantined_.assign(vms_, 0);
  result_.vm_peaks.assign(vms_, {});
  result_.shard_limit_gib.resize(shards_);
  result_.shard_wss_gib.resize(shards_);
  if (options_.record_vm_series) {
    result_.vm_limit_gib.resize(vms_);
    result_.vm_wss_gib.resize(vms_);
  }
  counter_prev_ = CounterDeltas();  // baseline: deltas vs zero = values
}

Pipeline::~Pipeline() = default;

void Pipeline::MixGauges(const VmGauges& g) {
  MixInto(&digest_, g.vm);
  MixInto(&digest_, g.limit_bytes);
  MixInto(&digest_, g.target_bytes);
  MixInto(&digest_, g.achieved_bytes);
  MixInto(&digest_, g.wss_bytes);
  MixInto(&digest_, g.rss_bytes);
  MixInto(&digest_, g.demand_bytes);
  MixInto(&digest_, static_cast<uint64_t>(g.busy) |
                        (static_cast<uint64_t>(g.quarantined) << 1));
  MixInto(&digest_, g.resizes);
  MixInto(&digest_, g.faults);
  MixInto(&digest_, g.retries);
  MixInto(&digest_, g.rollbacks);
  MixInto(&digest_, g.quarantined_frames);
}

void Pipeline::MixSummary(const EpochSummary& e) {
  MixInto(&digest_, e.epoch);
  MixInto(&digest_, e.at);
  MixInto(&digest_, e.pressure);
  MixInto(&digest_, e.committed_bytes);
  MixInto(&digest_, e.limit_bytes);
  MixInto(&digest_, e.wss_bytes);
  MixInto(&digest_, e.rss_bytes);
  MixInto(&digest_, e.busy_vms);
  MixInto(&digest_, e.quarantined_vms);
  MixInto(&digest_, e.granted);
  MixInto(&digest_, e.clipped);
  MixInto(&digest_, e.rejected);
  MixInto(&digest_, e.faults);
  MixInto(&digest_, e.retries);
  MixInto(&digest_, e.rollbacks);
  MixInto(&digest_, e.latency_burn_fast);
  MixInto(&digest_, e.latency_burn_slow);
  MixInto(&digest_, e.pressure_burn_fast);
  MixInto(&digest_, e.pressure_burn_slow);
  MixInto(&digest_, e.alerts);
}

std::vector<std::pair<std::string, uint64_t>> Pipeline::CounterDeltas() {
  std::vector<std::pair<std::string, uint64_t>> out;
  // Counters() is sorted by name; counter_prev_ inherits that order, so
  // the delta scan is a two-pointer merge. A counter registered mid-run
  // simply deltas against zero.
  size_t prev = 0;
  for (auto& [name, value] : trace::CounterRegistry::Global().Counters()) {
    if (!Allowlisted(name)) {
      continue;
    }
    while (prev < counter_prev_.size() && counter_prev_[prev].first < name) {
      ++prev;
    }
    uint64_t base = 0;
    if (prev < counter_prev_.size() && counter_prev_[prev].first == name) {
      base = counter_prev_[prev].second;
    }
    // Zero deltas are dropped: counters register lazily on first use, so
    // whether an idle counter EXISTS depends on process history (e.g. a
    // prior run in the same process) — only nonzero deltas are a pure
    // function of this run's virtual-time activity.
    if (value != base) {
      out.emplace_back(name, value - base);
    }
  }
  return out;
}

void Pipeline::EmitMarker(sim::Time at, const char* name, uint64_t arg0,
                          uint64_t arg1, trace::Op op) {
  if (!options_.emit_spans) {
    return;
  }
  if (trace::Tracer::Global().enabled()) {
    trace::Tracer::Global().Emit(trace::Category::kTelemetry, op, arg0, arg1);
  }
  trace::SpanTracer& spans = trace::SpanTracer::Global();
  if (!spans.enabled()) {
    return;
  }
  // Zero-length marker span on the pseudo "fleet" process (vm == fleet
  // size, one past the last real VM) so alerts render alongside the
  // request spans in Perfetto/ha_trace_tool without claiming a VM.
  trace::SpanRecord record;
  record.trace_id = spans.NewTraceId();
  record.span_id = spans.NewSpanId();
  record.vm = static_cast<uint32_t>(vms_);
  record.layer = trace::Layer::kTelemetry;
  record.name = name;
  record.begin_vns = at;
  record.end_vns = at;
  record.begin_wall_ns = trace::WallNowNs();
  record.end_wall_ns = record.begin_wall_ns;
  record.frames = arg0;
  spans.Emit(record);
}

void Pipeline::OnEpoch(sim::Time at, std::vector<VmGauges> gauges,
                       uint64_t committed_bytes, double pressure,
                       uint64_t granted, uint64_t clipped, uint64_t rejected,
                       const std::vector<double>& completed_ms) {
  if (!enabled_) {
    return;
  }
  HA_CHECK(gauges.size() == vms_);
  const uint64_t epoch_index = epochs_++;
  if (cooldown_ > 0) {
    --cooldown_;
  }

  EpochSummary e;
  e.epoch = epoch_index;
  e.at = at;
  e.pressure = pressure;
  e.committed_bytes = committed_bytes;
  e.granted = granted;
  e.clipped = clipped;
  e.rejected = rejected;
  e.rejected_delta = rejected - prev_rejected_;
  prev_rejected_ = rejected;

  std::vector<ShardGauges> shards(shards_);
  bool new_quarantine = false;
  uint64_t first_quarantined = ~0ull;
  FlightFrame frame;
  for (const VmGauges& g : gauges) {
    const unsigned sh = ShardOf(g.vm, shards_);
    ShardGauges& s = shards[sh];
    s.shard = sh;
    ++s.vms;
    s.limit_bytes += g.limit_bytes;
    s.wss_bytes += g.wss_bytes;
    s.rss_bytes += g.rss_bytes;
    s.busy_vms += g.busy ? 1 : 0;
    s.quarantined_vms += g.quarantined ? 1 : 0;
    s.faults += g.faults;
    e.limit_bytes += g.limit_bytes;
    e.wss_bytes += g.wss_bytes;
    e.rss_bytes += g.rss_bytes;
    e.busy_vms += g.busy ? 1 : 0;
    e.quarantined_vms += g.quarantined ? 1 : 0;
    e.faults += g.faults;
    e.retries += g.retries;
    e.rollbacks += g.rollbacks;
    if (g.quarantined && quarantined_[g.vm] == 0) {
      quarantined_[g.vm] = 1;
      if (!new_quarantine) {
        first_quarantined = g.vm;
      }
      new_quarantine = true;
    }
    VmPeaks& peaks = result_.vm_peaks[g.vm];
    peaks.peak_wss_bytes = std::max(peaks.peak_wss_bytes, g.wss_bytes);
    if (g.limit_bytes > 0) {
      peaks.peak_pressure =
          std::max(peaks.peak_pressure, static_cast<double>(g.wss_bytes) /
                                            static_cast<double>(g.limit_bytes));
    }
    MixGauges(g);
    if (options_.record_vm_series) {
      result_.vm_limit_gib[g.vm].Sample(at, Gib(g.limit_bytes));
      result_.vm_wss_gib[g.vm].Sample(at, Gib(g.wss_bytes));
    }
    // Flight-ring detail: retain per-VM rows only for the VMs a
    // postmortem reader would look at — in a healthy fleet that is
    // near-zero rows instead of N. The filter reads only sampled gauge
    // values, so the selection (and thus the dump bytes) stays a pure
    // function of virtual time.
    const bool interesting = g.busy || g.quarantined ||
                             g.quarantined_frames > 0 || g.faults > 0 ||
                             g.retries > 0 || g.rollbacks > 0;
    if (interesting) {
      if (options_.flight_vm_detail_cap != 0 &&
          frame.vm_detail.size() >= options_.flight_vm_detail_cap) {
        ++frame.vm_detail_omitted;
      } else {
        frame.vm_detail.push_back(g);
      }
    }
  }
  for (unsigned sh = 0; sh < shards_; ++sh) {
    result_.shard_limit_gib[sh].Sample(at, Gib(shards[sh].limit_bytes));
    result_.shard_wss_gib[sh].Sample(at, Gib(shards[sh].wss_bytes));
  }

  // Burn-rate windows. An epoch's latency error fraction is the share of
  // this epoch's resize completions over the latency target; the
  // pressure error is binary (over the ceiling or not).
  uint64_t late = 0;
  for (const double ms : completed_ms) {
    late += ms > options_.slo_resize_ms ? 1 : 0;
  }
  const double latency_error =
      completed_ms.empty() ? 0.0
                           : static_cast<double>(late) /
                                 static_cast<double>(completed_ms.size());
  const double pressure_error = pressure > options_.slo_pressure ? 1.0 : 0.0;
  latency_burn_.Push(latency_error, options_.burn_slow_epochs);
  pressure_burn_.Push(pressure_error, options_.burn_slow_epochs);
  e.latency_burn_fast =
      latency_burn_.Rate(options_.burn_fast_epochs, options_.error_budget);
  e.latency_burn_slow =
      latency_burn_.Rate(options_.burn_slow_epochs, options_.error_budget);
  e.pressure_burn_fast =
      pressure_burn_.Rate(options_.burn_fast_epochs, options_.error_budget);
  e.pressure_burn_slow =
      pressure_burn_.Rate(options_.burn_slow_epochs, options_.error_budget);

  bool alert_edge = false;
  const struct {
    Burn* burn;
    AlertKind kind;
    double fast;
    double slow;
  } monitors[] = {
      {&latency_burn_, AlertKind::kLatencyBurn, e.latency_burn_fast,
       e.latency_burn_slow},
      {&pressure_burn_, AlertKind::kPressureBurn, e.pressure_burn_fast,
       e.pressure_burn_slow},
  };
  for (const auto& m : monitors) {
    const bool fire = m.fast >= options_.burn_fast_threshold &&
                      m.slow >= options_.burn_slow_threshold;
    if (fire && !m.burn->firing) {
      AlertEvent alert;
      alert.at = at;
      alert.epoch = epoch_index;
      alert.kind = m.kind;
      alert.burn_fast = m.fast;
      alert.burn_slow = m.slow;
      result_.alert_events.push_back(alert);
      alert_edge = true;
      EmitMarker(at,
                 m.kind == AlertKind::kLatencyBurn
                     ? "telemetry.alert.latency_burn"
                     : "telemetry.alert.pressure_burn",
                 epoch_index, static_cast<uint64_t>(m.kind), trace::Op::kAlert);
    }
    m.burn->firing = fire;
  }
  e.alerts = result_.alert_events.size();
  MixSummary(e);

  frame.fleet = e;
  frame.shards = shards;
  frame.counter_deltas = CounterDeltas();
  // The deltas scan returns absolute values relative to counter_prev_;
  // advance the baseline by re-reading (same values, quiesced).
  for (auto& [name, delta] : frame.counter_deltas) {
    size_t i = 0;
    while (i < counter_prev_.size() && counter_prev_[i].first < name) {
      ++i;
    }
    if (i < counter_prev_.size() && counter_prev_[i].first == name) {
      counter_prev_[i].second += delta;
    } else {
      counter_prev_.insert(counter_prev_.begin() + static_cast<long>(i),
                           {name, delta});
    }
  }
  if (ring_.size() < options_.flight_depth) {
    ring_.push_back(std::move(frame));
    ring_next_ = ring_.size() % std::max(1u, options_.flight_depth);
  } else if (!ring_.empty()) {
    ring_[ring_next_] = std::move(frame);
    ring_next_ = (ring_next_ + 1) % ring_.size();
  }
  ring_filled_ = ring_.size();

  result_.fleet.push_back(e);
  result_.vm_last = std::move(gauges);
  result_.shard_last = std::move(shards);

  MaybeDump(at, alert_edge, new_quarantine, first_quarantined,
            e.rejected_delta);
}

void Pipeline::MaybeDump(sim::Time at, bool alert_edge, bool new_quarantine,
                         uint64_t quarantined_vm, uint64_t rejected_delta) {
  FlightTrigger trigger;
  if (alert_edge) {
    trigger = FlightTrigger::kAlert;
  } else if (new_quarantine) {
    trigger = FlightTrigger::kQuarantine;
  } else if (options_.reject_spike_threshold != 0 &&
             rejected_delta >= options_.reject_spike_threshold) {
    trigger = FlightTrigger::kRejectSpike;
  } else {
    return;
  }
  if (cooldown_ > 0 || result_.dumps.size() >= options_.flight_max_dumps) {
    return;
  }
  cooldown_ = options_.flight_cooldown_epochs;

  FlightDump dump;
  dump.at = at;
  dump.epoch = epochs_ - 1;
  dump.trigger = trigger;
  dump.vm = trigger == FlightTrigger::kQuarantine ? quarantined_vm : ~0ull;
  dump.ring_epochs = ring_filled_;
  dump.json = BuildFlightJson(dump);
  dump.perfetto = BuildFlightPerfetto();
  for (const char c : dump.json) {
    flight_digest_ ^= static_cast<unsigned char>(c);
    flight_digest_ *= kFnvPrime;
  }
  EmitMarker(at, "telemetry.flight_dump", dump.epoch,
             static_cast<uint64_t>(trigger), trace::Op::kFlightDump);
  result_.dumps.push_back(std::move(dump));
}

std::string Pipeline::BuildFlightJson(const FlightDump& dump) const {
  std::string out;
  out.reserve(4096 +
              ring_filled_ * (options_.flight_vm_detail_cap * 224 + 768));
  Append(&out, "{\n  \"schema\": \"hyperalloc-flight-v1\",\n");
  Append(&out,
         "  \"trigger\": {\"kind\": \"%s\", \"epoch\": %" PRIu64
         ", \"at_s\": %.6f",
         Name(dump.trigger), dump.epoch, Seconds(dump.at));
  if (dump.vm != ~0ull) {
    Append(&out, ", \"vm\": %" PRIu64, dump.vm);
  }
  Append(&out, "},\n");
  Append(&out, "  \"vms\": %" PRIu64 ",\n  \"shards\": %u,\n", vms_, shards_);
  Append(&out, "  \"alerts\": [");
  for (size_t i = 0; i < result_.alert_events.size(); ++i) {
    const AlertEvent& a = result_.alert_events[i];
    Append(&out,
           "%s\n    {\"epoch\": %" PRIu64
           ", \"at_s\": %.6f, \"kind\": \"%s\", \"burn_fast\": %.6f, "
           "\"burn_slow\": %.6f}",
           i == 0 ? "" : ",", a.epoch, Seconds(a.at), Name(a.kind),
           a.burn_fast, a.burn_slow);
  }
  Append(&out, "%s],\n", result_.alert_events.empty() ? "" : "\n  ");
  Append(&out, "  \"epochs\": [");
  for (uint64_t k = 0; k < ring_filled_; ++k) {
    // Oldest first: when the ring is full, ring_next_ points at the
    // oldest frame.
    const FlightFrame& f =
        ring_[ring_filled_ < options_.flight_depth
                  ? k
                  : (ring_next_ + k) % ring_.size()];
    const EpochSummary& e = f.fleet;
    Append(&out,
           "%s\n    {\"epoch\": %" PRIu64 ", \"at_s\": %.6f, "
           "\"pressure\": %.6f, \"committed_bytes\": %" PRIu64
           ", \"limit_bytes\": %" PRIu64 ", \"wss_bytes\": %" PRIu64
           ", \"rss_bytes\": %" PRIu64 ",\n",
           k == 0 ? "" : ",", e.epoch, Seconds(e.at), e.pressure,
           e.committed_bytes, e.limit_bytes, e.wss_bytes, e.rss_bytes);
    Append(&out,
           "     \"busy_vms\": %" PRIu64 ", \"quarantined_vms\": %" PRIu64
           ", \"granted\": %" PRIu64 ", \"clipped\": %" PRIu64
           ", \"rejected\": %" PRIu64 ", \"rejected_delta\": %" PRIu64
           ",\n",
           e.busy_vms, e.quarantined_vms, e.granted, e.clipped, e.rejected,
           e.rejected_delta);
    Append(&out,
           "     \"faults\": %" PRIu64 ", \"retries\": %" PRIu64
           ", \"rollbacks\": %" PRIu64
           ", \"latency_burn_fast\": %.6f, \"latency_burn_slow\": %.6f, "
           "\"pressure_burn_fast\": %.6f, \"pressure_burn_slow\": %.6f,\n",
           e.faults, e.retries, e.rollbacks, e.latency_burn_fast,
           e.latency_burn_slow, e.pressure_burn_fast, e.pressure_burn_slow);
    Append(&out, "     \"shards\": [");
    for (size_t s = 0; s < f.shards.size(); ++s) {
      const ShardGauges& sh = f.shards[s];
      Append(&out,
             "%s{\"shard\": %u, \"vms\": %" PRIu64
             ", \"limit_bytes\": %" PRIu64 ", \"wss_bytes\": %" PRIu64
             ", \"rss_bytes\": %" PRIu64 ", \"busy_vms\": %" PRIu64
             ", \"quarantined_vms\": %" PRIu64 ", \"faults\": %" PRIu64 "}",
             s == 0 ? "" : ", ", sh.shard, sh.vms, sh.limit_bytes,
             sh.wss_bytes, sh.rss_bytes, sh.busy_vms, sh.quarantined_vms,
             sh.faults);
    }
    Append(&out, "],\n");
    Append(&out, "     \"counter_deltas\": {");
    for (size_t c = 0; c < f.counter_deltas.size(); ++c) {
      Append(&out, "%s\"%s\": %" PRIu64, c == 0 ? "" : ", ",
             f.counter_deltas[c].first.c_str(), f.counter_deltas[c].second);
    }
    Append(&out, "},\n");
    Append(&out, "     \"vms_detail_omitted\": %" PRIu64 ",\n",
           f.vm_detail_omitted);
    Append(&out, "     \"vms_detail\": [");
    for (size_t v = 0; v < f.vm_detail.size(); ++v) {
      const VmGauges& g = f.vm_detail[v];
      Append(&out,
             "%s\n      {\"vm\": %" PRIu64 ", \"limit_bytes\": %" PRIu64
             ", \"target_bytes\": %" PRIu64 ", \"achieved_bytes\": %" PRIu64
             ", \"wss_bytes\": %" PRIu64 ", \"rss_bytes\": %" PRIu64
             ", \"demand_bytes\": %" PRIu64,
             v == 0 ? "" : ",", g.vm, g.limit_bytes, g.target_bytes,
             g.achieved_bytes, g.wss_bytes, g.rss_bytes, g.demand_bytes);
      Append(&out,
             ", \"busy\": %u, \"quarantined\": %u, \"resizes\": %" PRIu64
             ", \"faults\": %" PRIu64 ", \"retries\": %" PRIu64
             ", \"rollbacks\": %" PRIu64 ", \"quarantined_frames\": %" PRIu64
             "}",
             g.busy ? 1 : 0, g.quarantined ? 1 : 0, g.resizes, g.faults,
             g.retries, g.rollbacks, g.quarantined_frames);
    }
    Append(&out, "%s]}", f.vm_detail.empty() ? "" : "\n     ");
  }
  Append(&out, "%s]\n}\n", ring_filled_ == 0 ? "" : "\n  ");
  return out;
}

std::string Pipeline::BuildFlightPerfetto() const {
  std::string out;
  out.reserve(1024 + ring_filled_ * 512);
  Append(&out, "{\"traceEvents\":[\n");
  Append(&out,
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"fleet\"}}");
  for (uint64_t k = 0; k < ring_filled_; ++k) {
    const FlightFrame& f =
        ring_[ring_filled_ < options_.flight_depth
                  ? k
                  : (ring_next_ + k) % ring_.size()];
    const EpochSummary& e = f.fleet;
    const double ts = static_cast<double>(e.at) / 1000.0;  // virtual µs
    const struct {
      const char* name;
      double value;
    } tracks[] = {
        {"pressure", e.pressure},
        {"committed_gib", Gib(e.committed_bytes)},
        {"limit_gib", Gib(e.limit_bytes)},
        {"wss_gib", Gib(e.wss_bytes)},
        {"rss_gib", Gib(e.rss_bytes)},
        {"busy_vms", static_cast<double>(e.busy_vms)},
        {"quarantined_vms", static_cast<double>(e.quarantined_vms)},
        {"rejected_delta", static_cast<double>(e.rejected_delta)},
        {"latency_burn_fast", e.latency_burn_fast},
        {"pressure_burn_fast", e.pressure_burn_fast},
    };
    for (const auto& track : tracks) {
      Append(&out,
             ",\n{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"ts\":%.3f,"
             "\"args\":{\"value\":%.6f}}",
             track.name, ts, track.value);
    }
    for (const ShardGauges& sh : f.shards) {
      Append(&out,
             ",\n{\"name\":\"shard%u.limit_gib\",\"ph\":\"C\",\"pid\":0,"
             "\"ts\":%.3f,\"args\":{\"value\":%.6f}}",
             sh.shard, ts, Gib(sh.limit_bytes));
    }
  }
  Append(&out, "\n],\"displayTimeUnit\":\"ns\"}\n");
  return out;
}

TelemetryResult Pipeline::Finish() {
  result_.enabled = enabled_;
  result_.epochs = epochs_;
  result_.alerts = result_.alert_events.size();
  result_.flight_dumps = result_.dumps.size();
  result_.telemetry_digest = enabled_ ? digest_ : 0;
  result_.flight_digest = result_.dumps.empty() ? 0 : flight_digest_;
  result_.fleet_limit_gib =
      metrics::MergeSum(result_.shard_limit_gib, epoch_period_);
  result_.fleet_wss_gib =
      metrics::MergeSum(result_.shard_wss_gib, epoch_period_);
  return std::move(result_);
}

#endif  // HYPERALLOC_TRACE

}  // namespace hyperalloc::telemetry
