#include "src/telemetry/export.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"
#include "src/base/types.h"

namespace hyperalloc::telemetry {

namespace {

double Gib(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

double Mib(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

double Seconds(sim::Time t) {
  return static_cast<double>(t) / static_cast<double>(sim::kSec);
}

std::FILE* OpenOrDie(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  return file;
}

}  // namespace

void WriteFleetCsv(const std::string& path, const TelemetryResult& result) {
  std::FILE* file = OpenOrDie(path);
  std::fprintf(file,
               "time_s,epoch,pressure,committed_gib,limit_gib,wss_gib,"
               "rss_gib,busy_vms,quarantined_vms,granted,clipped,rejected,"
               "rejected_delta,faults,retries,rollbacks,latency_burn_fast,"
               "latency_burn_slow,pressure_burn_fast,pressure_burn_slow,"
               "alerts\n");
  for (const EpochSummary& e : result.fleet) {
    std::fprintf(file,
                 "%.3f,%" PRIu64 ",%.6f,%.6f,%.6f,%.6f,%.6f,%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                 ",%.6f,%.6f,%.6f,%.6f,%" PRIu64 "\n",
                 Seconds(e.at), e.epoch, e.pressure, Gib(e.committed_bytes),
                 Gib(e.limit_bytes), Gib(e.wss_bytes), Gib(e.rss_bytes),
                 e.busy_vms, e.quarantined_vms, e.granted, e.clipped,
                 e.rejected, e.rejected_delta, e.faults, e.retries,
                 e.rollbacks, e.latency_burn_fast, e.latency_burn_slow,
                 e.pressure_burn_fast, e.pressure_burn_slow, e.alerts);
  }
  std::fclose(file);
}

void WriteVmsCsv(const std::string& path, const TelemetryResult& result,
                 unsigned shards) {
  std::FILE* file = OpenOrDie(path);
  std::fprintf(file,
               "vm,shard,limit_mib,wss_mib,peak_wss_mib,peak_pressure,"
               "resizes,faults,retries,rollbacks,quarantined_frames,"
               "quarantined\n");
  for (const VmGauges& g : result.vm_last) {
    const VmPeaks peaks = g.vm < result.vm_peaks.size()
                              ? result.vm_peaks[g.vm]
                              : VmPeaks{};
    std::fprintf(file,
                 "%" PRIu64 ",%u,%.3f,%.3f,%.3f,%.6f,%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%u\n",
                 g.vm, ShardOf(g.vm, shards), Mib(g.limit_bytes),
                 Mib(g.wss_bytes), Mib(peaks.peak_wss_bytes),
                 peaks.peak_pressure, g.resizes, g.faults, g.retries,
                 g.rollbacks, g.quarantined_frames, g.quarantined ? 1 : 0);
  }
  std::fclose(file);
}

void WriteFleetPrometheus(const std::string& path,
                          const TelemetryResult& result, unsigned shards) {
  std::FILE* file = OpenOrDie(path);
  const EpochSummary last =
      result.fleet.empty() ? EpochSummary{} : result.fleet.back();
  const struct {
    const char* name;
    const char* type;
    double value;
  } fleet_rows[] = {
      {"hyperalloc_fleet_pressure", "gauge", last.pressure},
      {"hyperalloc_fleet_committed_gib", "gauge", Gib(last.committed_bytes)},
      {"hyperalloc_fleet_limit_gib", "gauge", Gib(last.limit_bytes)},
      {"hyperalloc_fleet_wss_gib", "gauge", Gib(last.wss_bytes)},
      {"hyperalloc_fleet_busy_vms", "gauge",
       static_cast<double>(last.busy_vms)},
      {"hyperalloc_fleet_quarantined_vms", "gauge",
       static_cast<double>(last.quarantined_vms)},
      {"hyperalloc_fleet_admission_granted", "counter",
       static_cast<double>(last.granted)},
      {"hyperalloc_fleet_admission_clipped", "counter",
       static_cast<double>(last.clipped)},
      {"hyperalloc_fleet_admission_rejected", "counter",
       static_cast<double>(last.rejected)},
      {"hyperalloc_fleet_latency_burn_fast", "gauge", last.latency_burn_fast},
      {"hyperalloc_fleet_latency_burn_slow", "gauge", last.latency_burn_slow},
      {"hyperalloc_fleet_pressure_burn_fast", "gauge",
       last.pressure_burn_fast},
      {"hyperalloc_fleet_pressure_burn_slow", "gauge",
       last.pressure_burn_slow},
      {"hyperalloc_fleet_alerts", "counter", static_cast<double>(last.alerts)},
      {"hyperalloc_fleet_flight_dumps", "counter",
       static_cast<double>(result.flight_dumps)},
  };
  for (const auto& row : fleet_rows) {
    std::fprintf(file, "# TYPE %s %s\n%s %.6f\n", row.name, row.type,
                 row.name, row.value);
  }
  std::fprintf(file, "# TYPE hyperalloc_shard_limit_gib gauge\n");
  for (const ShardGauges& s : result.shard_last) {
    std::fprintf(file, "hyperalloc_shard_limit_gib{shard=\"%u\"} %.6f\n",
                 s.shard, Gib(s.limit_bytes));
  }
  std::fprintf(file, "# TYPE hyperalloc_shard_wss_gib gauge\n");
  for (const ShardGauges& s : result.shard_last) {
    std::fprintf(file, "hyperalloc_shard_wss_gib{shard=\"%u\"} %.6f\n",
                 s.shard, Gib(s.wss_bytes));
  }
  std::fprintf(file, "# TYPE hyperalloc_shard_quarantined_vms gauge\n");
  for (const ShardGauges& s : result.shard_last) {
    std::fprintf(file,
                 "hyperalloc_shard_quarantined_vms{shard=\"%u\"} %" PRIu64
                 "\n",
                 s.shard, s.quarantined_vms);
  }
  if (result.vm_last.size() <= kPrometheusVmLimit) {
    std::fprintf(file, "# TYPE hyperalloc_vm_limit_mib gauge\n");
    for (const VmGauges& g : result.vm_last) {
      std::fprintf(file,
                   "hyperalloc_vm_limit_mib{vm=\"%" PRIu64
                   "\",shard=\"%u\"} %.3f\n",
                   g.vm, ShardOf(g.vm, shards), Mib(g.limit_bytes));
    }
    std::fprintf(file, "# TYPE hyperalloc_vm_wss_mib gauge\n");
    for (const VmGauges& g : result.vm_last) {
      std::fprintf(file,
                   "hyperalloc_vm_wss_mib{vm=\"%" PRIu64
                   "\",shard=\"%u\"} %.3f\n",
                   g.vm, ShardOf(g.vm, shards), Mib(g.wss_bytes));
    }
  }
  std::fclose(file);
}

void WriteFleetPerfetto(const std::string& path,
                        const TelemetryResult& result) {
  std::FILE* file = OpenOrDie(path);
  std::fprintf(file, "{\"traceEvents\":[\n");
  std::fprintf(file,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
               "\"args\":{\"name\":\"fleet\"}}");
  std::fprintf(file,
               ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"args\":{\"name\":\"shards\"}}");
  for (const EpochSummary& e : result.fleet) {
    const double ts = static_cast<double>(e.at) / 1000.0;  // virtual µs
    const struct {
      const char* name;
      double value;
    } tracks[] = {
        {"pressure", e.pressure},
        {"committed_gib", Gib(e.committed_bytes)},
        {"limit_gib", Gib(e.limit_bytes)},
        {"wss_gib", Gib(e.wss_bytes)},
        {"busy_vms", static_cast<double>(e.busy_vms)},
        {"quarantined_vms", static_cast<double>(e.quarantined_vms)},
        {"rejected_delta", static_cast<double>(e.rejected_delta)},
        {"latency_burn_fast", e.latency_burn_fast},
        {"pressure_burn_fast", e.pressure_burn_fast},
    };
    for (const auto& track : tracks) {
      std::fprintf(file,
                   ",\n{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"ts\":%.3f,"
                   "\"args\":{\"value\":%.6f}}",
                   track.name, ts, track.value);
    }
  }
  for (size_t sh = 0; sh < result.shard_limit_gib.size(); ++sh) {
    for (const auto& p : result.shard_limit_gib[sh].points()) {
      std::fprintf(file,
                   ",\n{\"name\":\"shard%zu.limit_gib\",\"ph\":\"C\","
                   "\"pid\":1,\"ts\":%.3f,\"args\":{\"value\":%.6f}}",
                   sh, static_cast<double>(p.at) / 1000.0, p.value);
    }
  }
  for (size_t sh = 0; sh < result.shard_wss_gib.size(); ++sh) {
    for (const auto& p : result.shard_wss_gib[sh].points()) {
      std::fprintf(file,
                   ",\n{\"name\":\"shard%zu.wss_gib\",\"ph\":\"C\","
                   "\"pid\":1,\"ts\":%.3f,\"args\":{\"value\":%.6f}}",
                   sh, static_cast<double>(p.at) / 1000.0, p.value);
    }
  }
  // Instant markers for the alert stream so alerts line up against the
  // counter tracks without loading the span trace.
  for (const AlertEvent& a : result.alert_events) {
    std::fprintf(file,
                 ",\n{\"name\":\"alert.%s\",\"ph\":\"i\",\"pid\":0,"
                 "\"ts\":%.3f,\"s\":\"g\"}",
                 Name(a.kind), static_cast<double>(a.at) / 1000.0);
  }
  std::fprintf(file, "\n],\"displayTimeUnit\":\"ns\"}\n");
  std::fclose(file);
}

uint64_t WriteFlightDumps(const std::string& prefix,
                          const TelemetryResult& result) {
  uint64_t written = 0;
  for (size_t i = 0; i < result.dumps.size(); ++i) {
    const FlightDump& dump = result.dumps[i];
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), ".flight%zu.json", i);
    std::FILE* file = OpenOrDie(prefix + suffix);
    std::fwrite(dump.json.data(), 1, dump.json.size(), file);
    std::fclose(file);
    std::snprintf(suffix, sizeof(suffix), ".flight%zu.perfetto.json", i);
    file = OpenOrDie(prefix + suffix);
    std::fwrite(dump.perfetto.data(), 1, dump.perfetto.size(), file);
    std::fclose(file);
    ++written;
  }
  return written;
}

void WriteTelemetryArtifacts(const std::string& prefix,
                             const TelemetryResult& result, unsigned shards) {
  WriteFleetCsv(prefix + ".fleet.csv", result);
  WriteVmsCsv(prefix + ".vms.csv", result, shards);
  WriteFleetPrometheus(prefix + ".prom", result, shards);
  WriteFleetPerfetto(prefix + ".perfetto.json", result);
  WriteFlightDumps(prefix, result);
}

}  // namespace hyperalloc::telemetry
