// Exporters over a finished TelemetryResult: fleet/VM CSV for
// ha_fleet_top and plot_csv.py --fleet, fleet-labeled Prometheus
// exposition, Perfetto counter tracks for whole-run timelines, and the
// flight-recorder postmortem bundles. Always compiled — TelemetryResult
// is plain data; under -DHYPERALLOC_TRACE=0 the pipeline simply never
// fills it and the writers emit headers only.
#pragma once

#include <string>

#include "src/telemetry/telemetry.h"

namespace hyperalloc::telemetry {

// Per-epoch fleet rows:
// "time_s,epoch,pressure,committed_gib,limit_gib,wss_gib,rss_gib,
//  busy_vms,quarantined_vms,granted,clipped,rejected,rejected_delta,
//  faults,retries,rollbacks,latency_burn_fast,latency_burn_slow,
//  pressure_burn_fast,pressure_burn_slow,alerts" (the format
// tools/ha_fleet_top and scripts/plot_csv.py --fleet read).
void WriteFleetCsv(const std::string& path, const TelemetryResult& result);

// Final per-VM gauge rows plus run peaks:
// "vm,shard,limit_mib,wss_mib,peak_wss_mib,peak_pressure,resizes,
//  faults,retries,rollbacks,quarantined_frames,quarantined".
void WriteVmsCsv(const std::string& path, const TelemetryResult& result,
                 unsigned shards);

// Prometheus text exposition of the final-epoch fleet state: fleet-level
// gauges plus per-shard series labeled {shard="N"} and per-VM series
// labeled {vm="N",shard="M"} (per-VM only when the fleet is small enough
// to keep cardinality sane — see kPrometheusVmLimit).
inline constexpr uint64_t kPrometheusVmLimit = 256;
void WriteFleetPrometheus(const std::string& path,
                          const TelemetryResult& result, unsigned shards);

// Perfetto counter tracks (ph:"C") over the whole run: fleet pressure /
// committed / limit / WSS / burn rates on pid 0 ("fleet"), per-shard
// limit+WSS tracks on pid 1 ("shards"). ts is virtual µs, so it overlays
// the span trace from trace::WritePerfettoJson directly.
void WriteFleetPerfetto(const std::string& path,
                        const TelemetryResult& result);

// Writes each retained flight dump as `prefix.flight<i>.json` (the
// hyperalloc-flight-v1 document) and `prefix.flight<i>.perfetto.json`.
// Returns the number of dumps written.
uint64_t WriteFlightDumps(const std::string& prefix,
                          const TelemetryResult& result);

// Convenience: the whole artifact set under one prefix —
// `prefix.fleet.csv`, `prefix.vms.csv`, `prefix.prom`,
// `prefix.perfetto.json`, plus the flight dumps.
void WriteTelemetryArtifacts(const std::string& prefix,
                             const TelemetryResult& result, unsigned shards);

}  // namespace hyperalloc::telemetry
