// Fleet-wide telemetry pipeline (DESIGN.md §4.13): barrier-sampled
// per-VM gauges, hierarchical per-shard/fleet aggregation into
// metrics::TimeSeries, an SLO burn-rate monitor, and a black-box flight
// recorder.
//
// Sampling model: the fleet engine calls Pipeline::OnEpoch exactly once
// per epoch barrier, on the sequential control thread, with every VM
// simulation quiesced at the barrier. Everything the pipeline reads is
// therefore a pure function of virtual time, which is what makes the
// whole stream — and the flight-dump bytes — byte-identical across
// worker-thread counts. Wall-clock values, host-pool high-water marks,
// and span/trace ids never enter the stream (the same "reported, never
// digested" discipline as FleetResult::pool_peak_frames).
//
// Burn-rate monitor: classic multi-window burn over the PR8 FleetSlo
// targets. Each epoch contributes an error fraction per SLO (resize
// completions over the latency target; pool pressure over its ceiling);
// burn = mean(error fraction over window) / error budget. An alert fires
// on the rising edge of (fast-window burn >= fast threshold AND
// slow-window burn >= slow threshold) and is emitted as a zero-length
// kTelemetry span plus a kTelemetry/kAlert trace event.
//
// Flight recorder: a bounded ring of the last `flight_depth` epochs of
// full fleet snapshots (per-VM gauges, shard rollups, allowlisted
// counter deltas). A trigger — alert edge, newly quarantined VM, or an
// admission-rejection spike — freezes the ring into a postmortem bundle:
// one `hyperalloc-flight-v1` JSON document plus one Perfetto
// counter-track JSON, both retained in the result (and written to disk
// by the bench harness).
//
// Compile-out: with -DHYPERALLOC_TRACE=0 Pipeline collapses to an empty
// stand-in (no sampling, no state); the plain-data result types stay
// available so FleetResult keeps its shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/metrics/timeseries.h"
#include "src/sim/simulation.h"
#include "src/trace/trace.h"

namespace hyperalloc::telemetry {

struct TelemetryOptions {
  bool enabled = true;
  // Aggregation shards for the per-host-pool-shard rollup; 0 = the pool
  // shard count the engine passes to the pipeline. VM -> shard is the
  // static `vm % shards` association (see ShardOf).
  unsigned shards = 0;
  // Keep per-VM limit/WSS series in the result (the shard and fleet
  // series are always kept). Off by default: at 1024 VMs the per-VM
  // series dominate the result's footprint.
  bool record_vm_series = false;
  // Emit alert/flight markers as kTelemetry spans + trace events when
  // the global tracers are enabled.
  bool emit_spans = true;

  // Burn-rate monitor. Budget is the error budget of the availability
  // target (0.01 = "99% of epochs within SLO"); windows are in epochs.
  double slo_resize_ms = 400.0;  // per-resize completion latency target
  double slo_pressure = 0.97;    // committed/capacity ceiling
  double error_budget = 0.01;
  unsigned burn_fast_epochs = 3;
  unsigned burn_slow_epochs = 12;
  double burn_fast_threshold = 8.0;
  double burn_slow_threshold = 2.0;

  // Flight recorder.
  unsigned flight_depth = 16;        // epochs retained in the ring
  unsigned flight_max_dumps = 4;     // hard cap per run
  unsigned flight_cooldown_epochs = 16;  // dump debounce
  // Admission-rejection spike trigger: rejections in ONE epoch at or
  // above this freeze the recorder. 0 disables the trigger.
  uint64_t reject_spike_threshold = 16;
  // Per ring epoch, at most this many per-VM detail rows are retained
  // (the "interesting" VMs: busy, quarantined, or with nonzero
  // fault/retry/rollback totals, in VM-index order). Rows past the cap
  // are counted in the dump's per-epoch "vms_detail_omitted" — never
  // silently dropped. 0 means unbounded.
  uint64_t flight_vm_detail_cap = 64;
};

// The static VM -> aggregation-shard association. Deliberately NOT the
// pool shard a VM's frames actually came from — that depends on which
// worker thread ran the VM and would break stream determinism.
inline unsigned ShardOf(uint64_t vm, unsigned shards) {
  return shards == 0 ? 0 : static_cast<unsigned>(vm % shards);
}

// One VM's gauge set at an epoch barrier, read by the engine with the
// fleet quiesced. Counts are cumulative over the run.
struct VmGauges {
  uint64_t vm = 0;
  uint64_t limit_bytes = 0;
  uint64_t target_bytes = 0;    // in-flight resize target (0 = idle)
  uint64_t achieved_bytes = 0;  // last completed resize's achieved limit
  uint64_t wss_bytes = 0;       // control loop's WSS EWMA
  uint64_t rss_bytes = 0;
  uint64_t demand_bytes = 0;
  bool busy = false;         // resize in flight
  bool quarantined = false;  // VM-level fault quarantine (latched)
  uint64_t resizes = 0;      // completed resizes
  uint64_t faults = 0;       // injected faults on the resize path
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
  uint64_t quarantined_frames = 0;
};

// Per-shard rollup (sums over the shard's VMs).
struct ShardGauges {
  unsigned shard = 0;
  uint64_t vms = 0;
  uint64_t limit_bytes = 0;
  uint64_t wss_bytes = 0;
  uint64_t rss_bytes = 0;
  uint64_t busy_vms = 0;
  uint64_t quarantined_vms = 0;
  uint64_t faults = 0;
};

// Fleet-level flat row, one per epoch (kept for the whole run; the
// flight ring additionally keeps the per-VM/per-shard detail).
struct EpochSummary {
  uint64_t epoch = 0;  // 0-based barrier index
  sim::Time at = 0;
  double pressure = 0.0;  // committed/capacity, clamped to [0, 1]
  uint64_t committed_bytes = 0;
  uint64_t limit_bytes = 0;  // fleet sums
  uint64_t wss_bytes = 0;
  uint64_t rss_bytes = 0;
  uint64_t busy_vms = 0;
  uint64_t quarantined_vms = 0;
  uint64_t granted = 0;  // cumulative admission counters
  uint64_t clipped = 0;
  uint64_t rejected = 0;
  uint64_t rejected_delta = 0;  // rejections in this epoch alone
  uint64_t faults = 0;          // cumulative fleet sums
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
  double latency_burn_fast = 0.0;
  double latency_burn_slow = 0.0;
  double pressure_burn_fast = 0.0;
  double pressure_burn_slow = 0.0;
  uint64_t alerts = 0;  // cumulative alert count after this epoch
};

enum class AlertKind : uint8_t {
  kLatencyBurn,   // resize completions blowing the latency budget
  kPressureBurn,  // pool pressure over its ceiling
};
const char* Name(AlertKind kind);

struct AlertEvent {
  sim::Time at = 0;
  uint64_t epoch = 0;  // 0-based epoch index
  AlertKind kind = AlertKind::kLatencyBurn;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
};

enum class FlightTrigger : uint8_t {
  kAlert,        // burn-rate alert rising edge
  kQuarantine,   // a VM newly entered fault quarantine
  kRejectSpike,  // admission rejections spiked in one epoch
};
const char* Name(FlightTrigger trigger);

struct FlightDump {
  sim::Time at = 0;
  uint64_t epoch = 0;
  FlightTrigger trigger = FlightTrigger::kAlert;
  uint64_t vm = ~0ull;  // kQuarantine: first newly quarantined VM
  uint64_t ring_epochs = 0;
  std::string json;      // the hyperalloc-flight-v1 document
  std::string perfetto;  // counter-track Chrome-trace JSON
};

// Per-VM peaks tracked across the run (ha_fleet_top's ranking inputs).
struct VmPeaks {
  uint64_t peak_wss_bytes = 0;
  double peak_pressure = 0.0;  // max over epochs of wss/limit
};

// Everything the pipeline produced. Plain data, always compiled.
struct TelemetryResult {
  bool enabled = false;
  uint64_t epochs = 0;
  uint64_t alerts = 0;
  uint64_t flight_dumps = 0;
  // FNV-1a over every sampled value (virtual-time only); byte-identical
  // across worker-thread counts.
  uint64_t telemetry_digest = 0;
  // FNV-1a over the concatenated flight-dump JSON bytes.
  uint64_t flight_digest = 0;
  std::vector<EpochSummary> fleet;
  std::vector<VmGauges> vm_last;    // final-epoch per-VM gauges
  std::vector<VmPeaks> vm_peaks;    // run peaks, index-aligned
  std::vector<ShardGauges> shard_last;
  // Hierarchical series: per-shard sums each epoch, and the fleet series
  // produced by metrics::MergeSum over the shard series (equal to
  // merging the raw per-VM series directly — tests/telemetry_test.cc).
  std::vector<metrics::TimeSeries> shard_limit_gib;
  std::vector<metrics::TimeSeries> shard_wss_gib;
  metrics::TimeSeries fleet_limit_gib;
  metrics::TimeSeries fleet_wss_gib;
  // record_vm_series only.
  std::vector<metrics::TimeSeries> vm_limit_gib;
  std::vector<metrics::TimeSeries> vm_wss_gib;
  std::vector<AlertEvent> alert_events;
  std::vector<FlightDump> dumps;
};

#if HYPERALLOC_TRACE

class Pipeline {
 public:
  // `pool_shards` backs TelemetryOptions::shards == 0; `epoch` is the
  // barrier period (series time base).
  Pipeline(const TelemetryOptions& options, uint64_t vms,
           unsigned pool_shards, sim::Time epoch);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  bool enabled() const { return enabled_; }

  // One barrier sample, on the sequential control thread. `gauges` is
  // VM-index-ordered; `completed_ms` holds the latencies of resizes that
  // completed since the previous barrier (deterministic scan order);
  // admission counters are cumulative. Taken by value so the per-epoch
  // producer can move its buffer in — the pipeline keeps it as the
  // last-seen snapshot instead of copying all N rows every epoch.
  void OnEpoch(sim::Time at, std::vector<VmGauges> gauges,
               uint64_t committed_bytes, double pressure, uint64_t granted,
               uint64_t clipped, uint64_t rejected,
               const std::vector<double>& completed_ms);

  // Finalizes the hierarchical series and moves the result out.
  TelemetryResult Finish();

 private:
  struct FlightFrame {
    EpochSummary fleet;
    // Per-VM rows for the "interesting" VMs only (busy, quarantined, or
    // with nonzero fault/retry/rollback totals), in VM-index order,
    // capped at flight_vm_detail_cap. Copying and later serializing all
    // N VMs for every ring epoch is what made dumps cost tens of
    // milliseconds at 1024 VMs.
    std::vector<VmGauges> vm_detail;
    uint64_t vm_detail_omitted = 0;  // interesting rows past the cap
    std::vector<ShardGauges> shards;
    // Allowlisted (deterministic) counter deltas over this epoch.
    std::vector<std::pair<std::string, uint64_t>> counter_deltas;
  };

  struct Burn {
    std::vector<double> window;  // ring of per-epoch error fractions
    size_t next = 0;
    uint64_t filled = 0;
    bool firing = false;

    void Push(double error, unsigned slow_epochs);
    double Rate(unsigned epochs, double budget) const;
  };

  void MixGauges(const VmGauges& g);
  void MixSummary(const EpochSummary& e);
  std::vector<std::pair<std::string, uint64_t>> CounterDeltas();
  void EmitMarker(sim::Time at, const char* name, uint64_t arg0,
                  uint64_t arg1, trace::Op op);
  void MaybeDump(sim::Time at, bool alert_edge, bool new_quarantine,
                 uint64_t quarantined_vm, uint64_t rejected_delta);
  std::string BuildFlightJson(const FlightDump& dump) const;
  std::string BuildFlightPerfetto() const;

  TelemetryOptions options_;
  bool enabled_ = false;
  uint64_t vms_ = 0;
  unsigned shards_ = 1;
  sim::Time epoch_period_ = 0;
  uint64_t epochs_ = 0;

  TelemetryResult result_;
  std::vector<FlightFrame> ring_;  // ring of the last flight_depth epochs
  size_t ring_next_ = 0;
  uint64_t ring_filled_ = 0;
  std::vector<uint8_t> quarantined_;  // latched per-VM quarantine flags
  std::vector<std::pair<std::string, uint64_t>> counter_prev_;
  uint64_t prev_rejected_ = 0;
  Burn latency_burn_;
  Burn pressure_burn_;
  unsigned cooldown_ = 0;
  uint64_t digest_ = 14695981039346656037ull;
  uint64_t flight_digest_ = 14695981039346656037ull;
};

#else  // !HYPERALLOC_TRACE

// Empty stand-in: same API surface, no state, no sampling.
class Pipeline {
 public:
  Pipeline(const TelemetryOptions&, uint64_t, unsigned, sim::Time) {}
  bool enabled() const { return false; }
  void OnEpoch(sim::Time, std::vector<VmGauges>, uint64_t, double, uint64_t,
               uint64_t, uint64_t, const std::vector<double>&) {}
  TelemetryResult Finish() { return {}; }
};

#endif  // HYPERALLOC_TRACE

}  // namespace hyperalloc::telemetry
