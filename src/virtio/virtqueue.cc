#include "src/virtio/virtqueue.h"

#include "src/base/check.h"

namespace hyperalloc::virtio {

Virtqueue::Virtqueue(sim::Simulation* sim, const hv::CostModel* costs,
                     unsigned capacity)
    : sim_(sim), costs_(costs), capacity_(capacity) {
  HA_CHECK(sim != nullptr && costs != nullptr && capacity > 0);
  pending_.reserve(capacity);
}

void Virtqueue::Push(uint64_t value) {
  sim_->AdvanceClock(costs_->virtqueue_element_ns);
  pending_.push_back(value);
  ++total_elements_;
  if (pending_.size() >= capacity_) {
    Kick();
  }
}

void Virtqueue::Kick() {
  if (pending_.empty()) {
    return;
  }
  sim_->AdvanceClock(costs_->hypercall_ns);
  ++total_hypercalls_;
  if (consumer_) {
    consumer_(pending_);
  }
  pending_.clear();
}

}  // namespace hyperalloc::virtio
