// Minimal virtio-queue model: a guest driver pushes page-frame numbers,
// which are delivered to the host-side consumer in batches of up to
// `capacity` elements per hypercall ("Even though the hypercalls are
// aggregated (up to 256 pages per hypercall) ...", paper §5.3). Costs are
// charged to the simulation clock: one descriptor-processing cost per
// element and one hypercall per kick.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/hv/cost_model.h"
#include "src/sim/simulation.h"

namespace hyperalloc::virtio {

class Virtqueue {
 public:
  using Consumer = std::function<void(std::span<const uint64_t>)>;

  Virtqueue(sim::Simulation* sim, const hv::CostModel* costs,
            unsigned capacity = 256);

  void SetConsumer(Consumer consumer) { consumer_ = std::move(consumer); }

  unsigned capacity() const { return capacity_; }

  // Enqueues one element; kicks automatically when the batch is full.
  void Push(uint64_t value);

  // Delivers any pending elements with one hypercall.
  void Kick();

  uint64_t total_elements() const { return total_elements_; }
  uint64_t total_hypercalls() const { return total_hypercalls_; }

 private:
  sim::Simulation* sim_;
  const hv::CostModel* costs_;
  unsigned capacity_;
  Consumer consumer_;
  std::vector<uint64_t> pending_;
  uint64_t total_elements_ = 0;
  uint64_t total_hypercalls_ = 0;
};

}  // namespace hyperalloc::virtio
