// E2 — reproduces Fig. 5 and the STREAM half of Table 2 (§5.4): memory
// bandwidth over time while the VM is shrunk (t=20 s) and grown (t=90 s),
// for 1/4/12 threads. Writes per-iteration scatter data to
// bench_out/stream_<candidate>_<threads>.csv and prints the
// 1st-percentile table.
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bench/candidates.h"
#include "bench/trace_io.h"
#include "src/base/stats.h"
#include "src/fleet/arrival.h"
#include "src/workloads/interference_hub.h"
#include "src/workloads/stream.h"

namespace hyperalloc::bench {
namespace {

std::string Slug(const char* name) {
  std::string s(name);
  for (char& c : s) {
    if (c == '(' || c == ')' || c == '+') {
      c = '_';
    }
  }
  return s;
}

double RunOne(Candidate candidate, unsigned threads, bool write_csv) {
  Setup setup = MakeSetup(candidate);
  workloads::MemoryPool pool(setup.vm.get());

  workloads::StreamConfig config;
  config.threads = threads;
  config.vcpus = 12;
  // Iterations chosen so the baseline run lasts ~135 s (§5.4: "the
  // slowest candidate took 140 s").
  const double per_thread_bw =
      workloads::StreamAggregateBandwidth(threads) /
      static_cast<double>(threads);
  const double iter_s = static_cast<double>(config.bytes_per_iteration) /
                        per_thread_bw / 1e9;
  config.iterations = static_cast<unsigned>(135.0 / iter_s);

  workloads::StreamWorkload stream(setup.sim.get(), config);
  workloads::InterferenceHub hub(&stream.vcpus(),
                                 stream.bandwidth_timelines(), threads);
  setup.vm->SetInterferenceSink(&hub);

  PrepareVm(&setup, &pool);
  const sim::Time start = setup.sim->now();
  fleet::ApplyResizeSchedule(
      setup.sim.get(), setup.deflator.get(),
      fleet::StepResizeTrace(setup.vm->config().memory_bytes), start);

  bool done = false;
  stream.Start([&] { done = true; });
  while (!done) {
    HA_CHECK(setup.sim->Step());
  }

  if (write_csv) {
    const std::string path = "bench_out/stream_" + Slug(Name(candidate)) +
                             "_" + std::to_string(threads) + ".csv";
    metrics::TimeSeries shifted;
    for (const auto& p : stream.samples().points()) {
      shifted.Sample(p.at - start, p.value);
    }
    shifted.WriteCsv(path, "bandwidth_gb_s");
  }

  std::vector<double> values;
  for (const auto& p : stream.samples().points()) {
    values.push_back(p.value);
  }
  return Percentile(values, 0.01);
}

int Main(int argc, char** argv) {
  bool write_csv = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-csv") == 0) {
      write_csv = false;
    }
  }
  if (write_csv) {
    ::mkdir("bench_out", 0755);
  }

  const Candidate candidates[] = {
      Candidate::kBaselineBuddy, Candidate::kBalloon,
      Candidate::kBalloonHuge,   Candidate::kVmem,
      Candidate::kVmemVfio,      Candidate::kHyperAlloc,
      Candidate::kHyperAllocVfio};
  const unsigned thread_counts[] = {1, 4, 12};

  std::printf("Table 2 (STREAM): 1st percentile bandwidth [GB/s] during "
              "resize (shrink @20 s, grow @90 s)\n\n");
  std::printf("%-22s %8s %8s %8s\n", "candidate", "1", "4", "12");
  for (const Candidate candidate : candidates) {
    std::printf("%-22s", Name(candidate));
    for (const unsigned threads : thread_counts) {
      const double p1 = RunOne(candidate, threads, write_csv);
      // Per-thread percentile scaled to aggregate for multi-thread rows
      // (Table 2 reports machine bandwidth).
      std::printf(" %8.1f", p1 * threads);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  if (write_csv) {
    std::printf("\nScatter series written to bench_out/stream_*.csv "
                "(Fig. 5)\n");
  }
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
