// Shared benchmark harness support: constructs the evaluation candidates
// of Table 1 (virtio-balloon, virtio-balloon-huge, virtio-mem ± VFIO,
// HyperAlloc ± VFIO) plus the static baselines, wired to a fresh
// simulation, host pool, and guest VM configured like the paper's (§5.2;
// modelling deviations catalogued in DESIGN.md §4.4):
// 12 vCPUs, 20 GiB (DMA32 2 GiB + Normal; for virtio-mem, 2 GiB regular +
// 18 GiB hotpluggable Movable memory).
#ifndef HYPERALLOC_BENCH_CANDIDATES_H_
#define HYPERALLOC_BENCH_CANDIDATES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/balloon/virtio_balloon.h"
#include "src/core/hyperalloc.h"
#include "src/core/hyperalloc_generic.h"
#include "src/fault/fault.h"
#include "src/fleet/fleet.h"
#include "src/guest/guest_vm.h"
#include "src/hv/deflator.h"
#include "src/hv/host_memory.h"
#include "src/sim/simulation.h"
#include "src/vmem/virtio_mem.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {

enum class Candidate {
  kBaselineBuddy,   // static VM, buddy allocator (paper's "Baseline")
  kBaselineLLFree,  // static VM, LLFree allocator (Fig. 7 "LLFree")
  kBalloon,
  kBalloonHuge,
  kVmem,
  kVmemVfio,
  kHyperAlloc,
  kHyperAllocVfio,
  // Extension (§6 Concept Generalization): HyperAlloc protocol over the
  // buddy allocator via the auxiliary (A, E) interface.
  kHyperAllocGeneric,
};

const char* Name(Candidate candidate);
bool IsVfio(Candidate candidate);
bool HasDeflator(Candidate candidate);

struct SetupOptions {
  uint64_t memory_bytes = 20 * kGiB;
  unsigned vcpus = 12;
  uint64_t host_bytes = 64 * kGiB;
  // virtio-balloon free-page-reporting knobs (Fig. 7 sweep).
  balloon::BalloonConfig balloon;
  vmem::VmemConfig vmem;
  core::HyperAllocConfig hyperalloc;
  // Deterministic fault injection (DESIGN.md §4.9). An enabled plan is
  // armed on the VM *after* boot-time population, so VM construction
  // itself never faults.
  fault::Plan fault_plan;
};

struct Setup {
  Candidate candidate;
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<hv::HostMemory> host;
  std::unique_ptr<guest::GuestVm> vm;
  std::unique_ptr<hv::Deflator> deflator;  // null for the baselines
  std::unique_ptr<fault::Injector> fault;  // null when the plan is empty

  // Synchronously drives a limit change to completion; returns the
  // virtual time it took.
  sim::Time SetLimit(uint64_t bytes);
};

Setup MakeSetup(Candidate candidate, const SetupOptions& options = {});

// A VM + deflator pair living on an externally owned simulation and host
// pool — for multi-VM experiments (Fig. 11).
struct VmBundle {
  Candidate candidate;
  std::unique_ptr<guest::GuestVm> vm;
  std::unique_ptr<hv::Deflator> deflator;
};

VmBundle MakeVmBundle(sim::Simulation* sim, hv::HostMemory* host,
                      Candidate candidate, const SetupOptions& options = {},
                      const std::string& name = "vm");

// Fleet-construction path: a fleet::VmFactory that builds `candidate`
// VMs from `options` on the engine's simulations. When the fault plan
// is enabled, each VM gets its own injector with `plan.seed + index`
// (decorrelated per-VM fault schedules, same composition rules as
// MakeSetup).
fleet::VmFactory MakeFleetVmFactory(Candidate candidate,
                                    const SetupOptions& options = {});

// Runs the SPEC-style preparation (§5.4): grow the VM to its maximum
// and randomize the allocator state.
void PrepareVm(Setup* setup, workloads::MemoryPool* pool);

// All deflation candidates (no baselines), optionally including the
// VFIO variants.
std::vector<Candidate> DeflationCandidates(bool include_vfio);

}  // namespace hyperalloc::bench

#endif  // HYPERALLOC_BENCH_CANDIDATES_H_
