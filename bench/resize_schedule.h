// Shared harness piece for the guest-impact experiments (§5.4): prepare
// the VM SPEC-style, then shrink the hard limit to 2 GiB at t=20 s and
// grow it back at t=90 s while a workload runs.
#ifndef HYPERALLOC_BENCH_RESIZE_SCHEDULE_H_
#define HYPERALLOC_BENCH_RESIZE_SCHEDULE_H_

#include "bench/candidates.h"
#include "src/workloads/memory_pool.h"
#include "src/workloads/spec_prep.h"

namespace hyperalloc::bench {

inline constexpr sim::Time kShrinkAt = 20 * sim::kSec;
inline constexpr sim::Time kGrowAt = 90 * sim::kSec;
inline constexpr uint64_t kResizeTarget = 2 * kGiB;

// Runs the SPEC-style preparation (§5.4): grow the VM to its maximum and
// randomize the allocator state.
inline void PrepareVm(Setup* setup, workloads::MemoryPool* pool) {
  workloads::SpecPrepConfig prep;
  prep.peak_bytes = 18 * kGiB;
  prep.cache_bytes = 2560ull * kMiB;
  prep.residual_fraction = 0.03;
  workloads::SpecPrep(setup->vm.get(), pool, prep);
}

// Schedules the shrink/grow pair relative to `start` (no-op for
// baselines without a deflator).
inline void ScheduleResize(Setup* setup, sim::Time start) {
  if (setup->deflator == nullptr) {
    return;
  }
  hv::Deflator* deflator = setup->deflator.get();
  const uint64_t full = setup->vm->config().memory_bytes;
  setup->sim->At(start + kShrinkAt, [deflator] {
    deflator->Request({.target_bytes = kResizeTarget, .done = {}});
  });
  setup->sim->At(start + kGrowAt, [deflator, full] {
    deflator->Request({.target_bytes = full, .done = {}});
  });
}

}  // namespace hyperalloc::bench

#endif  // HYPERALLOC_BENCH_RESIZE_SCHEDULE_H_
