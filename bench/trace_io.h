// Command-line glue between the benchmark harness and the tracing layer.
//
// Every bench binary constructs one TraceOutput at the top of main(). If
// --trace-out=PATH (or "--trace-out PATH") is present on the command line,
// event tracing is enabled with an enlarged per-thread ring and the merged
// artifact (JSON or CSV, chosen by extension — see src/trace/export.h) is
// written when the object is destroyed, i.e. after the benchmark ran.
#ifndef HYPERALLOC_BENCH_TRACE_IO_H_
#define HYPERALLOC_BENCH_TRACE_IO_H_

#include <string>

namespace hyperalloc::bench {

class TraceOutput {
 public:
  TraceOutput(int argc, char** argv);
  ~TraceOutput();

  TraceOutput(const TraceOutput&) = delete;
  TraceOutput& operator=(const TraceOutput&) = delete;

  bool enabled() const { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace hyperalloc::bench

#endif  // HYPERALLOC_BENCH_TRACE_IO_H_
