// Thin bench-side clients of the fleet engine (src/fleet/): the Fig. 11
// compile fleet (the old multi-VM harness scenario) and the policy-driven
// 1000-VM scenarios, plus the shared `hyperalloc-bench-fleet-v1` JSON
// emitter used standalone by bench_fleet and embedded by bench_runner.
#ifndef HYPERALLOC_BENCH_FLEET_BENCH_H_
#define HYPERALLOC_BENCH_FLEET_BENCH_H_

#include <memory>
#include <string>

#include "bench/candidates.h"
#include "src/fleet/agents.h"
#include "src/fleet/arrival.h"
#include "src/fleet/fleet.h"
#include "src/fleet/policy.h"
#include "src/workloads/compile.h"

namespace hyperalloc::bench {

// The Fig. 11 (§5.6) compile-fleet shape: N identical VMs, each building
// clang `builds_per_vm` times with long gaps, optionally staggered.
// Same knobs (and defaults) as the retired bench-private harness.
struct CompileFleetOptions {
  int vms = 3;
  // Host threads driving the per-VM simulations. 0 = one per VM.
  unsigned threads = 1;
  Candidate candidate = Candidate::kHyperAlloc;
  bool offset = false;  // stagger build starts by `offset_step` per VM
  sim::Time gap = 35 * sim::kMin;
  sim::Time offset_step = 12 * sim::kMin;
  int builds_per_vm = 3;
  uint64_t vm_bytes = 16 * kGiB;
  // Pool beyond vms x vm_bytes; keeps TryReserve always-admitting, which
  // the run-to-completion determinism contract depends on.
  uint64_t host_slack_bytes = 16 * kGiB;
  sim::Time sample_period = sim::kSec;
  // Per-build template; build i of every VM runs with seed
  // `compile.seed + i` (VMs are identical tenants, as in Fig. 11).
  workloads::CompileConfig compile;
};

// Runs the compile fleet in run-to-completion mode (no policy; resizes
// come from per-VM auto-reclaim). Per-VM RSS series and digests are
// byte-identical across `threads` settings.
fleet::FleetResult RunCompileFleet(const CompileFleetOptions& options);

// Writes bench_out/multivm_<tag>_vm<i>.csv plus the merged series (same
// file names as the retired harness, so plotting stays stable).
void WriteFleetCsvs(const fleet::FleetResult& result, const std::string& tag);

// A policy-driven fleet scenario: `vms` small VMs on an overcommitted
// host, demand driven by an arrival process, limits driven by a resize
// policy under admission control, with an optional pressure spike
// probing the time-to-reclaim SLO.
struct FleetScenarioOptions {
  uint64_t vms = 128;
  unsigned threads = 1;
  // "proportional-share" | "pressure-pid" | "market" | "none".
  std::string policy = "proportional-share";
  Candidate candidate = Candidate::kHyperAlloc;
  uint64_t vm_bytes = 64 * kMiB;
  // Pool sizing when host_bytes == 0: vms * vm_bytes / overcommit.
  double overcommit = 1.6;
  uint64_t host_bytes = 0;
  sim::Time horizon = 4 * sim::kMin;
  sim::Time epoch = 5 * sim::kSec;
  // kind/bounds/shape knobs; horizon and seed are overridden from the
  // scenario fields below.
  fleet::ArrivalConfig arrival;
  fleet::PolicyConfig policy_config;
  // spike.vms is clamped to the fleet size; 0 disables the probe.
  fleet::PressureSpike spike{2 * sim::kMin, 32, 32 * kMiB};
  bool record_series = true;
  // Huge-frame fast-path mode (§4.14): every demand agent touches its
  // regions THP-backed (thp_fraction = 1.0) so population and reclaim
  // both move at 2 MiB granularity; the emitted JSON gains the
  // fleet-wide huge-reclaim split.
  bool huge = false;
  uint64_t seed = 1;
  // Per-VM fault plan (VM i gets seed fault_plan.seed + i, like
  // bench_faults); default: no faults.
  fault::Plan fault_plan;
  // Barrier-sampled telemetry pipeline knobs (src/telemetry/).
  telemetry::TelemetryOptions telemetry;
};

// Policy lookup by CLI name; returns null for "none"; aborts on an
// unknown name.
std::unique_ptr<fleet::ResizePolicy> MakePolicyByName(
    const std::string& name, const fleet::PolicyConfig& config);

const char* ArrivalKindName(fleet::ArrivalKind kind);

fleet::FleetResult RunFleetScenario(const FleetScenarioOptions& options);

// The `hyperalloc-bench-fleet-v1` JSON object (no surrounding key).
// `deterministic` is the caller's digest comparison across worker-thread
// counts; `indent` is the column of the object's members.
std::string FleetJson(const FleetScenarioOptions& options,
                      const fleet::FleetResult& result, bool deterministic,
                      int indent);

}  // namespace hyperalloc::bench

#endif  // HYPERALLOC_BENCH_FLEET_BENCH_H_
