// Degraded-mode reclaim: how fast each candidate shrinks a VM while the
// de/inflation boundaries are failing underneath it (DESIGN.md §4.9,
// EXPERIMENTS.md "Degraded-mode reclaim").
//
// For each candidate the harness sweeps a per-operation transient fault
// rate over the recoverable sites (install hypercall, EPT unmap, IOMMU
// unpin, balloon virtqueue, virtio-mem plug/unplug) and measures reclaim
// throughput in virtual GiB/s, plus the recovery work it took (faults
// observed, retries, rollbacks) and how far the request got. Everything
// is deterministic for a fixed --fault-seed: the same seed reproduces the
// exact failure schedule (README "Fault injection").
//
//   --fault-seed=N    seed for the failure schedule (default 42)
//   --fault-plan=SPEC extra run with an explicit plan (grammar in
//                     src/fault/fault.h), alongside the rate-0 baseline
//   --smoke           small VM for CI (seconds, not minutes)
//   --out=PATH        JSON output (default BENCH_FAULTS.json), schema
//                     hyperalloc-bench-faults-v1, checked by
//                     scripts/check_bench_json.py
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/fleet_bench.h"
#include "bench/trace_io.h"
#include "src/base/units.h"
#include "src/fault/fault.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {
namespace {

// The default sweep injects only at boundaries the recovery layer owns
// end to end. kEptMap and kHostReserve are deliberately excluded: they
// also fire during the prepare phase (workload page faults populating
// guest memory), which would measure the workload's degradation rather
// than the reclaim path's.
constexpr fault::Site kSweepSites[] = {
    fault::Site::kInstallHypercall, fault::Site::kEptUnmap,
    fault::Site::kIommuUnpin,       fault::Site::kBalloonHypercall,
    fault::Site::kVmemPlug,         fault::Site::kVmemUnplug,
};

constexpr double kRates[] = {0.0, 0.001, 0.01, 0.05};

fault::Plan SweepPlan(uint64_t seed, double rate) {
  fault::Plan plan;
  plan.seed = seed;
  for (const fault::Site site : kSweepSites) {
    plan.spec(site).probability = rate;
    plan.spec(site).kind = fault::Kind::kTransient;
  }
  return plan;
}

struct SweepPoint {
  double rate = 0.0;  // -1 for an explicit --fault-plan run
  std::string plan;   // textual plan (seed + active sites)
  double reclaim_gibps = 0.0;
  double virtual_ms = 0.0;
  uint64_t start_bytes = 0;
  uint64_t target_bytes = 0;
  uint64_t achieved_bytes = 0;
  bool complete = false;
  bool timed_out = false;
  bool quarantined = false;
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
  uint64_t injected_total = 0;
};

// The reclaim probe inside the (single-VM) fleet: prepare the guest so
// the shrink has real work to do, then issue one 2 GiB shrink request
// and stop when it settles. Fault composition is unchanged from the
// MakeSetup path — the fleet VM factory arms the same per-VM injector,
// and the engine arms the host pool's kHostReserve site with it.
class ReclaimProbe : public fleet::VmAgent {
 public:
  void Start(fleet::VmContext* context) override {
    context_ = context;
    // Prepare: back most of guest memory with host frames, then free it
    // so the shrink below has real reclaim work to do (same shape as E1).
    workloads::MemoryPool pool(context->vm);
    const uint64_t memory = context->vm->config().memory_bytes;
    const uint64_t region =
        pool.AllocRegion(memory - kGiB, /*thp_fraction=*/0.95, 0);
    pool.FreeRegion(region, 0);
    context->vm->PurgeAllocatorCaches();

    start_bytes_ = context->deflator->limit_bytes();
    issued_ = context->sim->now();
    context->deflator->Request({.target_bytes = 2 * kGiB, .done = [this] {
                                  elapsed_ = context_->sim->now() - issued_;
                                  done_ = true;
                                }});
  }

  bool finished() const override { return done_; }
  uint64_t demand_bytes() const override { return 0; }

  uint64_t start_bytes() const { return start_bytes_; }
  sim::Time elapsed() const { return elapsed_; }

 private:
  fleet::VmContext* context_ = nullptr;
  uint64_t start_bytes_ = 0;
  sim::Time issued_ = 0;
  sim::Time elapsed_ = 0;
  bool done_ = false;
};

SweepPoint RunOne(Candidate candidate, const fault::Plan& plan, double rate,
                  bool smoke) {
  SetupOptions options;
  options.memory_bytes = smoke ? 4 * kGiB : 20 * kGiB;
  options.fault_plan = plan;

  fleet::FleetConfig config;
  config.vms = 1;
  config.threads = 1;
  config.vm_bytes = options.memory_bytes;
  config.host_bytes = smoke ? 16 * kGiB : 64 * kGiB;
  config.run_to_completion = true;
  config.record_series = false;
  config.arm_host_faults = true;

  ReclaimProbe* probe = nullptr;
  fleet::FleetEngine engine(
      config, MakeFleetVmFactory(candidate, options),
      [&probe](uint64_t) {
        auto agent = std::make_unique<ReclaimProbe>();
        probe = agent.get();
        return agent;
      },
      /*policy=*/nullptr);
  engine.Run();

  const sim::Time elapsed = probe->elapsed();
  const uint64_t before = probe->start_bytes();
  const hv::ResizeOutcome& outcome = engine.deflator(0)->last_outcome();

  SweepPoint point;
  point.rate = rate;
  point.plan = plan.enabled() ? plan.ToString() : "";
  point.virtual_ms = static_cast<double>(elapsed) / 1e6;
  point.start_bytes = before;
  point.target_bytes = outcome.target_bytes;
  point.achieved_bytes = outcome.achieved_bytes;
  point.complete = outcome.complete;
  point.timed_out = outcome.timed_out;
  point.quarantined = outcome.quarantined;
  point.faults = outcome.faults;
  point.retries = outcome.retries;
  point.rollbacks = outcome.rollbacks;
  point.injected_total = engine.injector(0) != nullptr
                             ? engine.injector(0)->injected_total()
                             : 0;
  const uint64_t reclaimed =
      before > outcome.achieved_bytes ? before - outcome.achieved_bytes : 0;
  if (elapsed > 0) {
    point.reclaim_gibps = static_cast<double>(reclaimed) /
                          static_cast<double>(kGiB) /
                          (static_cast<double>(elapsed) / 1e9);
  }
  return point;
}

std::string JsonBool(bool value) { return value ? "true" : "false"; }

std::string JsonDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void AppendPoint(std::string* json, const SweepPoint& point, bool last) {
  *json += "        {\"rate\": " + JsonDouble(point.rate);
  *json += ", \"plan\": \"" + point.plan + "\"";
  *json += ", \"reclaim_gibps\": " + JsonDouble(point.reclaim_gibps);
  *json += ", \"virtual_ms\": " + JsonDouble(point.virtual_ms);
  *json += ", \"start_bytes\": " + std::to_string(point.start_bytes);
  *json += ", \"target_bytes\": " + std::to_string(point.target_bytes);
  *json += ", \"achieved_bytes\": " + std::to_string(point.achieved_bytes);
  *json += ", \"complete\": " + JsonBool(point.complete);
  *json += ", \"timed_out\": " + JsonBool(point.timed_out);
  *json += ", \"quarantined\": " + JsonBool(point.quarantined);
  *json += ", \"faults\": " + std::to_string(point.faults);
  *json += ", \"retries\": " + std::to_string(point.retries);
  *json += ", \"rollbacks\": " + std::to_string(point.rollbacks);
  *json += ", \"injected_total\": " + std::to_string(point.injected_total);
  *json += last ? "}\n" : "},\n";
}

int Main(int argc, char** argv) {
  uint64_t seed = 42;
  bool smoke = false;
  std::string out = "BENCH_FAULTS.json";
  std::string plan_spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      seed = std::strtoull(argv[i] + 13, nullptr, 0);
    } else if (std::strncmp(argv[i], "--fault-plan=", 13) == 0) {
      plan_spec = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    }
  }

  fault::Plan custom;
  custom.seed = seed;
  if (!plan_spec.empty()) {
    std::string error;
    if (!fault::Plan::Parse(plan_spec, &custom, &error)) {
      std::fprintf(stderr, "bench_faults: bad --fault-plan: %s\n",
                   error.c_str());
      return 2;
    }
  }

  const std::vector<Candidate> candidates = {
      Candidate::kBalloon, Candidate::kVmem, Candidate::kHyperAlloc,
      Candidate::kHyperAllocVfio};

  std::printf("Degraded-mode reclaim (seed %" PRIu64 "%s)\n\n", seed,
              smoke ? ", smoke" : "");
  std::printf("%-22s %8s %14s %10s %8s %8s %6s\n", "candidate", "rate",
              "reclaim GiB/s", "achieved%", "faults", "retries", "state");

  std::string json = "{\n";
  json += "  \"schema\": \"hyperalloc-bench-faults-v1\",\n";
  json += "  \"pr\": \"5\",\n";
  json += "  \"smoke\": " + JsonBool(smoke) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"candidates\": [\n";

  for (size_t c = 0; c < candidates.size(); ++c) {
    const Candidate candidate = candidates[c];
    std::vector<SweepPoint> points;
    for (const double rate : kRates) {
      points.push_back(
          RunOne(candidate, SweepPlan(seed, rate), rate, smoke));
    }
    if (!plan_spec.empty()) {
      points.push_back(RunOne(candidate, custom, -1.0, smoke));
    }

    for (const SweepPoint& point : points) {
      // Fraction of the *requested* shrink that actually happened.
      const uint64_t asked = point.start_bytes > point.target_bytes
                                 ? point.start_bytes - point.target_bytes
                                 : 0;
      const uint64_t got = point.start_bytes > point.achieved_bytes
                               ? point.start_bytes - point.achieved_bytes
                               : 0;
      const double achieved_pct =
          asked > 0 ? 100.0 * static_cast<double>(got) /
                          static_cast<double>(asked)
                    : 100.0;
      const char* state = point.quarantined  ? "quar"
                          : point.timed_out  ? "tmo"
                          : point.complete   ? "ok"
                                             : "part";
      std::printf("%-22s %8.4f %14.2f %9.1f%% %8" PRIu64 " %8" PRIu64
                  " %6s\n",
                  Name(candidate), point.rate, point.reclaim_gibps,
                  achieved_pct, point.faults, point.retries, state);
    }
    std::printf("\n");

    json += "    {\"name\": \"" + std::string(Name(candidate)) +
            "\", \"sweep\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      AppendPoint(&json, points[i], i + 1 == points.size());
    }
    json += c + 1 == candidates.size() ? "    ]}\n" : "    ]},\n";
  }
  json += "  ]\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::fprintf(stderr, "wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
