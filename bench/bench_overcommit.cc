// Extension experiment (paper §6 "Beyond Memory Reclamation"): what
// happens when the guests' accumulated demand exceeds host memory?
//
// Two 16 GiB VMs with offset memory bursts share a 24 GiB host:
//   (a) transparent host swapping only (the hypervisor's classic
//       fallback) — the idle VM's stale memory must be discovered the
//       hard way, by evicting and faulting;
//   (b) HyperAlloc automatic reclamation (+ swap as backstop) — idle
//       memory is returned cooperatively before pressure builds.
//
// Runs on the fleet engine's shared-clock mode (src/fleet/fleet.h): the
// two VMs are causally coupled through the swap manager, so they live on
// ONE simulation driven by one thread.
//
// Reported: total swap traffic, time spent in swap I/O, and the peak
// host usage. The paper's prediction: "HyperAlloc, because of its better
// memory efficiency, is expected to cause fewer and shorter
// out-of-memory situations."
#include <cstdio>
#include <memory>

#include "bench/fleet_bench.h"
#include "bench/trace_io.h"
#include "src/base/units.h"
#include "src/hv/swap.h"
#include "src/workloads/blender.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {
namespace {

// One tenant: a Blender render job starting at a per-VM offset. VM 1
// starts when VM 0 is mid-render; VM 0's memory goes idle (freed) before
// VM 1 peaks — cooperative reclamation can exploit that, swapping cannot
// (it only reacts to pressure).
class BlenderAgent : public fleet::VmAgent {
 public:
  explicit BlenderAgent(sim::Time start_at) : start_at_(start_at) {}

  void Start(fleet::VmContext* context) override {
    context_ = context;
    if (context->deflator != nullptr) {
      context->deflator->StartAuto();
    }
    pool_ = std::make_unique<workloads::MemoryPool>(context->vm);
    pool_->DisableMigrationTracking();
    workloads::BlenderConfig job;
    job.working_set = 12 * kGiB;
    job.scene_bytes = kGiB;
    job.render_time = 3 * sim::kMin;
    job_ = std::make_unique<workloads::BlenderWorkload>(context->vm,
                                                        pool_.get(), job);
    context->sim->At(start_at_,
                     [this] { job_->Run([this] { done_ = true; }); });
  }

  bool finished() const override { return done_; }
  uint64_t demand_bytes() const override {
    return context_ != nullptr ? context_->vm->rss_bytes() : 0;
  }

 private:
  sim::Time start_at_;
  fleet::VmContext* context_ = nullptr;
  std::unique_ptr<workloads::MemoryPool> pool_;
  std::unique_ptr<workloads::BlenderWorkload> job_;
  bool done_ = false;
};

struct OvercommitResult {
  uint64_t swapped_out = 0;
  uint64_t swapped_in = 0;
  sim::Time runtime = 0;
  double peak_gib = 0.0;
};

OvercommitResult Run(bool hyperalloc_reclaim) {
  fleet::FleetConfig config;
  config.vms = 2;
  config.threads = 1;
  config.vm_bytes = 16 * kGiB;
  config.host_bytes = 24 * kGiB;
  config.shared_clock = true;
  config.run_to_completion = true;
  config.record_series = false;

  SetupOptions options;
  options.memory_bytes = config.vm_bytes;
  const Candidate candidate = hyperalloc_reclaim
                                  ? Candidate::kHyperAlloc
                                  : Candidate::kBaselineLLFree;

  fleet::FleetEngine engine(
      config, MakeFleetVmFactory(candidate, options),
      [](uint64_t index) {
        return std::make_unique<BlenderAgent>(
            index == 0 ? 0 : 5 * sim::kMin + 30 * sim::kSec);
      },
      /*policy=*/nullptr);

  // The swap manager spans both VMs on the shared clock; register each
  // tenant before its agent starts (StartAuto runs inside the agent).
  std::unique_ptr<hv::SwapManager> swap;
  sim::Simulation* shared_sim = nullptr;
  engine.SetOnVmCreated([&engine, &swap, &shared_sim](
                            uint64_t, sim::Simulation* sim,
                            guest::GuestVm* vm, hv::Deflator*) {
    if (swap == nullptr) {
      shared_sim = sim;
      swap = std::make_unique<hv::SwapManager>(sim, engine.host());
    }
    swap->Register(vm);
  });

  const fleet::FleetResult fleet_result = engine.Run();

  OvercommitResult result;
  result.swapped_out = swap->swapped_out_frames();
  result.swapped_in = swap->swapped_in_frames();
  result.runtime = shared_sim->now();
  result.peak_gib = static_cast<double>(fleet_result.pool_peak_frames) *
                    static_cast<double>(kFrameSize) /
                    static_cast<double>(kGiB);
  return result;
}

int Main() {
  std::printf("Overcommit extension (6): two 16 GiB VMs, offset bursts, "
              "24 GiB host\n\n");
  std::printf("%-28s %14s %14s %10s %8s\n", "configuration", "swapped-out",
              "swapped-in", "runtime", "peak");
  for (const bool reclaim : {false, true}) {
    const OvercommitResult result = Run(reclaim);
    std::printf("%-28s %14s %14s %10s %7.1fG\n",
                reclaim ? "HyperAlloc auto + swap" : "swap only",
                FormatBytes(result.swapped_out * kFrameSize).c_str(),
                FormatBytes(result.swapped_in * kFrameSize).c_str(),
                FormatDuration(result.runtime).c_str(), result.peak_gib);
    std::fflush(stdout);
  }
  std::printf("\nCooperative reclamation returns idle memory before "
              "pressure builds; transparent swapping discovers it the "
              "expensive way.\n");
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main();
}
