// Extension experiment (paper §6 "Beyond Memory Reclamation"): what
// happens when the guests' accumulated demand exceeds host memory?
//
// Two 16 GiB VMs with offset memory bursts share a 24 GiB host:
//   (a) transparent host swapping only (the hypervisor's classic
//       fallback) — the idle VM's stale memory must be discovered the
//       hard way, by evicting and faulting;
//   (b) HyperAlloc automatic reclamation (+ swap as backstop) — idle
//       memory is returned cooperatively before pressure builds.
//
// Reported: total swap traffic, time spent in swap I/O, and the peak
// host usage. The paper's prediction: "HyperAlloc, because of its better
// memory efficiency, is expected to cause fewer and shorter
// out-of-memory situations."
#include <cstdio>
#include <memory>

#include "bench/candidates.h"
#include "bench/trace_io.h"
#include "src/base/units.h"
#include "src/hv/swap.h"
#include "src/workloads/blender.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {
namespace {

struct OvercommitResult {
  uint64_t swapped_out = 0;
  uint64_t swapped_in = 0;
  sim::Time runtime = 0;
  double peak_gib = 0.0;
};

OvercommitResult Run(bool hyperalloc_reclaim) {
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(24 * kGiB));
  hv::SwapManager swap(&sim, &host);

  struct Tenant {
    VmBundle bundle;
    std::unique_ptr<workloads::MemoryPool> pool;
    std::unique_ptr<workloads::BlenderWorkload> job;
    bool done = false;
  };
  std::vector<std::unique_ptr<Tenant>> tenants;
  for (int i = 0; i < 2; ++i) {
    auto tenant = std::make_unique<Tenant>();
    SetupOptions options;
    options.memory_bytes = 16 * kGiB;
    tenant->bundle = MakeVmBundle(
        &sim, &host,
        hyperalloc_reclaim ? Candidate::kHyperAlloc
                           : Candidate::kBaselineLLFree,
        options, "vm" + std::to_string(i));
    swap.Register(tenant->bundle.vm.get());
    if (tenant->bundle.deflator != nullptr) {
      tenant->bundle.deflator->StartAuto();
    }
    tenant->pool =
        std::make_unique<workloads::MemoryPool>(tenant->bundle.vm.get());
    tenant->pool->DisableMigrationTracking();
    workloads::BlenderConfig job;
    job.working_set = 12 * kGiB;
    job.scene_bytes = kGiB;
    job.render_time = 3 * sim::kMin;
    tenant->job = std::make_unique<workloads::BlenderWorkload>(
        tenant->bundle.vm.get(), tenant->pool.get(), job);
    tenants.push_back(std::move(tenant));
  }

  // Offset bursts: VM 1 starts when VM 0 is mid-render; VM 0's memory
  // goes idle (freed) before VM 1 peaks — cooperative reclamation can
  // exploit that, swapping cannot (it only reacts to pressure).
  const sim::Time start = sim.now();
  Tenant* first = tenants[0].get();
  Tenant* second = tenants[1].get();
  sim.At(start, [first] { first->job->Run([first] { first->done = true; }); });
  sim.At(start + 5 * sim::kMin + 30 * sim::kSec,
         [second] { second->job->Run([second] { second->done = true; }); });

  while (!(first->done && second->done)) {
    HA_CHECK(sim.Step());
  }
  OvercommitResult result;
  result.swapped_out = swap.swapped_out_frames();
  result.swapped_in = swap.swapped_in_frames();
  result.runtime = sim.now() - start;
  result.peak_gib = static_cast<double>(host.peak_frames()) *
                    static_cast<double>(kFrameSize) /
                    static_cast<double>(kGiB);
  return result;
}

int Main() {
  std::printf("Overcommit extension (6): two 16 GiB VMs, offset bursts, "
              "24 GiB host\n\n");
  std::printf("%-28s %14s %14s %10s %8s\n", "configuration", "swapped-out",
              "swapped-in", "runtime", "peak");
  for (const bool reclaim : {false, true}) {
    const OvercommitResult result = Run(reclaim);
    std::printf("%-28s %14s %14s %10s %7.1fG\n",
                reclaim ? "HyperAlloc auto + swap" : "swap only",
                FormatBytes(result.swapped_out * kFrameSize).c_str(),
                FormatBytes(result.swapped_in * kFrameSize).c_str(),
                FormatDuration(result.runtime).c_str(), result.peak_gib);
    std::fflush(stdout);
  }
  std::printf("\nCooperative reclamation returns idle memory before "
              "pressure builds; transparent swapping discovers it the "
              "expensive way.\n");
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main();
}
