// E7 — reproduces Fig. 10 (§5.5 "Repeated Workloads"): three consecutive
// SPEC-2017 blender runs with 4-minute idle periods, under virtio-balloon
// free-page reporting vs. HyperAlloc automatic reclamation. The page
// cache is dropped once at the end. Reports the memory footprint, the
// assigned VM memory at the end of each idle period, and after the cache
// drop — the paper's headline: 1.17 GiB (HyperAlloc) vs 4.08 GiB
// (virtio-balloon).
#include <sys/stat.h>

#include <cstdio>
#include <string>

#include "bench/candidates.h"
#include "bench/trace_io.h"
#include "src/metrics/timeseries.h"
#include "src/workloads/blender.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {
namespace {

constexpr sim::Time kIdle = 4 * sim::kMin;

struct BlenderResult {
  double footprint_gib_min;
  double after_idle_gib[3];
  double final_gib;
  metrics::TimeSeries rss;
};

BlenderResult Run(Candidate candidate) {
  // A 10 GiB VM: the render's working set keeps the guest under real
  // memory pressure, which is what scatters the long-lived kernel state.
  SetupOptions options;
  options.memory_bytes = 10 * kGiB;
  Setup setup = MakeSetup(candidate, options);
  workloads::MemoryPool pool(setup.vm.get());
  pool.DisableMigrationTracking();
  setup.deflator->StartAuto();

  BlenderResult result{};
  const sim::Time start = setup.sim->now();
  bool sampling = true;
  std::function<void()> tick = [&] {
    if (!sampling) {
      return;
    }
    result.rss.Sample(setup.sim->now() - start,
                      static_cast<double>(setup.vm->rss_bytes()) /
                          static_cast<double>(kGiB));
    setup.sim->After(sim::kSec, tick);
  };
  tick();

  workloads::BlenderConfig blender_config;
  blender_config.working_set = 6 * kGiB + 512 * kMiB;
  workloads::BlenderWorkload blender(setup.vm.get(), &pool, blender_config);
  for (int run = 0; run < 3; ++run) {
    bool done = false;
    blender.Run([&] { done = true; });
    while (!done) {
      HA_CHECK(setup.sim->Step());
    }
    setup.sim->RunUntil(setup.sim->now() + kIdle);
    result.after_idle_gib[run] = static_cast<double>(setup.vm->rss_bytes()) /
                                 static_cast<double>(kGiB);
  }
  setup.vm->DropCaches();
  setup.vm->PurgeAllocatorCaches();
  setup.sim->RunUntil(setup.sim->now() + 30 * sim::kSec);
  result.final_gib = static_cast<double>(setup.vm->rss_bytes()) /
                     static_cast<double>(kGiB);
  sampling = false;
  result.footprint_gib_min = result.rss.IntegralPerMinute();
  setup.deflator->StopAuto();
  return result;
}

int Main() {
  ::mkdir("bench_out", 0755);
  std::printf("Fig. 10: repeated SPEC-2017 blender runs with automatic "
              "deflation (3 runs, 4 min idle between, drop caches at "
              "the end)\n\n");
  std::printf("%-20s %12s %8s %8s %8s %8s\n", "candidate", "footprint",
              "idle1", "idle2", "idle3", "dropped");
  std::printf("%-20s %12s %8s %8s %8s %8s\n", "", "[GiB*min]", "[GiB]",
              "[GiB]", "[GiB]", "[GiB]");

  double footprint[2] = {0, 0};
  double idle1[2] = {0, 0};
  int idx = 0;
  for (const Candidate candidate :
       {Candidate::kBalloon, Candidate::kHyperAlloc}) {
    const BlenderResult result = Run(candidate);
    std::printf("%-20s %12.1f %8.2f %8.2f %8.2f %8.2f\n", Name(candidate),
                result.footprint_gib_min, result.after_idle_gib[0],
                result.after_idle_gib[1], result.after_idle_gib[2],
                result.final_gib);
    const std::string path = std::string("bench_out/blender_") +
                             (candidate == Candidate::kBalloon
                                  ? "balloon"
                                  : "hyperalloc") +
                             "_rss.csv";
    result.rss.WriteCsv(path, "vm_gib");
    footprint[idx] = result.footprint_gib_min;
    idle1[idx] = result.after_idle_gib[0];
    ++idx;
    std::fflush(stdout);
  }
  std::printf("\nHyperAlloc reduces idle memory after run 1 by %.0f%% "
              "(paper: 49%%) and the footprint from %.0f to %.0f GiB*min "
              "(paper: 300 -> 234)\n",
              (1.0 - idle1[1] / idle1[0]) * 100.0, footprint[0],
              footprint[1]);
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main();
}
