#include "bench/candidates.h"

#include "src/base/check.h"
#include "src/trace/trace.h"
#include "src/workloads/spec_prep.h"

namespace hyperalloc::bench {

const char* Name(Candidate candidate) {
  switch (candidate) {
    case Candidate::kBaselineBuddy:
      return "baseline(buddy)";
    case Candidate::kBaselineLLFree:
      return "baseline(llfree)";
    case Candidate::kBalloon:
      return "virtio-balloon";
    case Candidate::kBalloonHuge:
      return "virtio-balloon-huge";
    case Candidate::kVmem:
      return "virtio-mem";
    case Candidate::kVmemVfio:
      return "virtio-mem+VFIO";
    case Candidate::kHyperAlloc:
      return "HyperAlloc";
    case Candidate::kHyperAllocVfio:
      return "HyperAlloc+VFIO";
    case Candidate::kHyperAllocGeneric:
      return "HyperAlloc-generic";
  }
  return "?";
}

bool IsVfio(Candidate candidate) {
  return candidate == Candidate::kVmemVfio ||
         candidate == Candidate::kHyperAllocVfio;
}

bool HasDeflator(Candidate candidate) {
  return candidate != Candidate::kBaselineBuddy &&
         candidate != Candidate::kBaselineLLFree;
}

std::vector<Candidate> DeflationCandidates(bool include_vfio) {
  std::vector<Candidate> list = {Candidate::kBalloon, Candidate::kBalloonHuge,
                                 Candidate::kVmem, Candidate::kHyperAlloc,
                                 Candidate::kHyperAllocGeneric};
  if (include_vfio) {
    list.push_back(Candidate::kVmemVfio);
    list.push_back(Candidate::kHyperAllocVfio);
  }
  return list;
}

sim::Time Setup::SetLimit(uint64_t bytes) {
  HA_CHECK(deflator != nullptr);
  const sim::Time start = sim->now();
  bool done = false;
  deflator->Request({.target_bytes = bytes, .done = [&] { done = true; }});
  while (!done) {
    HA_CHECK(sim->Step());
  }
  return sim->now() - start;
}

Setup MakeSetup(Candidate candidate, const SetupOptions& options) {
  Setup setup;
  setup.candidate = candidate;
  setup.sim = std::make_unique<sim::Simulation>();
  setup.host =
      std::make_unique<hv::HostMemory>(FramesForBytes(options.host_bytes));
  VmBundle bundle =
      MakeVmBundle(setup.sim.get(), setup.host.get(), candidate, options);
  setup.vm = std::move(bundle.vm);
  setup.deflator = std::move(bundle.deflator);
  if (options.fault_plan.enabled()) {
    // Arm the injector only now: the VM (and, for virtio-mem+VFIO, its
    // boot-time pre-population) is fully constructed, so every fault
    // lands on a recoverable boundary.
    setup.fault = std::make_unique<fault::Injector>(options.fault_plan);
    setup.vm->SetFaultInjector(setup.fault.get());
    setup.host->SetFaultInjector(setup.fault.get());
  }
  return setup;
}

VmBundle MakeVmBundle(sim::Simulation* sim, hv::HostMemory* host,
                      Candidate candidate, const SetupOptions& options,
                      const std::string& name) {
  VmBundle setup;
  setup.candidate = candidate;

  // Stamp trace events with this simulation's virtual clock. Benches run
  // one simulation at a time, so the last-created bundle owns the clock.
  trace::Tracer::Global().SetTimeSource(sim);

  guest::GuestConfig gc;
  gc.name = name;
  gc.memory_bytes = options.memory_bytes;
  gc.vcpus = options.vcpus;
  gc.vfio = IsVfio(candidate);

  switch (candidate) {
    case Candidate::kBaselineLLFree:
    case Candidate::kHyperAlloc:
    case Candidate::kHyperAllocVfio:
      gc.allocator = guest::AllocatorKind::kLLFree;
      gc.dma32_bytes = 2 * kGiB;
      break;
    case Candidate::kVmem:
    case Candidate::kVmemVfio:
      // 2 GiB of regular system memory plus hotpluggable Movable memory
      // (§5.2).
      gc.allocator = guest::AllocatorKind::kBuddy;
      gc.dma32_bytes = 0;
      gc.movable_bytes = options.memory_bytes - 2 * kGiB;
      break;
    default:
      gc.allocator = guest::AllocatorKind::kBuddy;
      gc.dma32_bytes = 2 * kGiB;
      break;
  }
  if (gc.memory_bytes <= gc.dma32_bytes) {
    gc.dma32_bytes = 0;  // small test VMs: single Normal zone
  }

  setup.vm = std::make_unique<guest::GuestVm>(sim, host, gc);

  switch (candidate) {
    case Candidate::kBalloon: {
      balloon::BalloonConfig config = options.balloon;
      config.huge = false;
      setup.deflator = std::make_unique<balloon::VirtioBalloon>(
          setup.vm.get(), config);
      break;
    }
    case Candidate::kBalloonHuge: {
      balloon::BalloonConfig config = options.balloon;
      config.huge = true;
      config.reporting_order = kHugeOrder;
      setup.deflator = std::make_unique<balloon::VirtioBalloon>(
          setup.vm.get(), config);
      break;
    }
    case Candidate::kVmem:
    case Candidate::kVmemVfio:
      setup.deflator =
          std::make_unique<vmem::VirtioMem>(setup.vm.get(), options.vmem);
      break;
    case Candidate::kHyperAlloc:
    case Candidate::kHyperAllocVfio:
      setup.deflator = std::make_unique<core::HyperAllocMonitor>(
          setup.vm.get(), options.hyperalloc);
      break;
    case Candidate::kHyperAllocGeneric:
      setup.deflator = std::make_unique<core::GenericHyperAllocMonitor>(
          setup.vm.get(), core::GenericHyperAllocConfig{});
      break;
    default:
      break;
  }
  return setup;
}

fleet::VmFactory MakeFleetVmFactory(Candidate candidate,
                                    const SetupOptions& options) {
  return [candidate, options](sim::Simulation* sim, hv::HostMemory* host,
                              uint64_t index, const std::string& name) {
    VmBundle bundle = MakeVmBundle(sim, host, candidate, options, name);
    fleet::FleetVmParts parts;
    parts.vm = std::move(bundle.vm);
    parts.deflator = std::move(bundle.deflator);
    if (options.fault_plan.enabled()) {
      // Same arm-after-boot rule as MakeSetup; the seed is decorrelated
      // per VM so fleet faults don't land in lockstep.
      fault::Plan plan = options.fault_plan;
      plan.seed += index;
      parts.fault = std::make_unique<fault::Injector>(plan);
      parts.vm->SetFaultInjector(parts.fault.get());
    }
    return parts;
  };
}

void PrepareVm(Setup* setup, workloads::MemoryPool* pool) {
  workloads::SpecPrepConfig prep;
  prep.peak_bytes = 18 * kGiB;
  prep.cache_bytes = 2560ull * kMiB;
  prep.residual_fraction = 0.03;
  workloads::SpecPrep(setup->vm.get(), pool, prep);
}

}  // namespace hyperalloc::bench
