#include "bench/fleet_bench.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"

namespace hyperalloc::bench {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

fleet::FleetResult RunCompileFleet(const CompileFleetOptions& options) {
  HA_CHECK(options.vms > 0);
  fleet::FleetConfig config;
  config.vms = static_cast<uint64_t>(options.vms);
  config.threads = options.threads;
  config.vm_bytes = options.vm_bytes;
  config.host_slack_bytes = options.host_slack_bytes;
  config.sample_period = options.sample_period;
  config.run_to_completion = true;

  SetupOptions vm_options;
  vm_options.memory_bytes = options.vm_bytes;
  vm_options.balloon.reporting_order = kHugeOrder;  // kernel default o=9

  fleet::CompileAgentConfig agent;
  agent.compile = options.compile;
  agent.builds_per_vm = options.builds_per_vm;
  agent.gap = options.gap;
  agent.offset = options.offset;
  agent.offset_step = options.offset_step;

  fleet::FleetEngine engine(
      config, MakeFleetVmFactory(options.candidate, vm_options),
      [agent](uint64_t) { return std::make_unique<fleet::CompileAgent>(agent); },
      /*policy=*/nullptr);
  return engine.Run();
}

void WriteFleetCsvs(const fleet::FleetResult& result, const std::string& tag) {
  for (size_t i = 0; i < result.per_vm_rss.size(); ++i) {
    result.per_vm_rss[i].WriteCsv(std::string("bench_out/multivm_") + tag +
                                      "_vm" + std::to_string(i) + ".csv",
                                  "vm_rss_gib");
  }
  result.merged.WriteCsv(std::string("bench_out/multivm_") + tag + ".csv",
                         "host_used_gib");
}

std::unique_ptr<fleet::ResizePolicy> MakePolicyByName(
    const std::string& name, const fleet::PolicyConfig& config) {
  if (name == "proportional-share") {
    return fleet::MakeProportionalShare(config);
  }
  if (name == "pressure-pid") {
    return fleet::MakePressurePid(config);
  }
  if (name == "market") {
    return fleet::MakeMarketPolicy(config);
  }
  if (name == "none") {
    return nullptr;
  }
  std::fprintf(stderr, "unknown policy '%s' (want proportional-share, "
                       "pressure-pid, market, or none)\n",
               name.c_str());
  HA_CHECK(false);
  return nullptr;
}

const char* ArrivalKindName(fleet::ArrivalKind kind) {
  switch (kind) {
    case fleet::ArrivalKind::kStepResize:
      return "step-resize";
    case fleet::ArrivalKind::kBursty:
      return "bursty";
    case fleet::ArrivalKind::kDiurnal:
      return "diurnal";
    case fleet::ArrivalKind::kHeavyTailed:
      return "heavy-tailed";
  }
  return "?";
}

fleet::FleetResult RunFleetScenario(const FleetScenarioOptions& options) {
  HA_CHECK(options.vms > 0);
  HA_CHECK(options.overcommit > 0.0);
  fleet::FleetConfig config;
  config.vms = options.vms;
  config.threads = options.threads;
  config.vm_bytes = options.vm_bytes;
  config.host_bytes =
      options.host_bytes != 0
          ? options.host_bytes
          : static_cast<uint64_t>(
                static_cast<double>(options.vms * options.vm_bytes) /
                options.overcommit);
  config.horizon = options.horizon;
  config.epoch = options.epoch;
  config.record_series = options.record_series;
  // Start every VM at the policy floor (+headroom) so the admission
  // ledger is feasible from the first barrier.
  config.initial_limit_bytes =
      options.policy_config.min_limit_bytes +
      options.policy_config.headroom_bytes;
  config.spike = options.spike;
  config.spike.vms = std::min<uint64_t>(config.spike.vms, options.vms);
  config.telemetry = options.telemetry;

  fleet::ArrivalConfig arrival = options.arrival;
  arrival.horizon = options.horizon;
  arrival.seed = options.seed;
  arrival.peak_bytes = std::min(arrival.peak_bytes, options.vm_bytes);
  std::shared_ptr<fleet::ArrivalProcess> process =
      fleet::MakeArrivalProcess(arrival);

  SetupOptions vm_options;
  vm_options.memory_bytes = options.vm_bytes;
  vm_options.balloon.reporting_order = kHugeOrder;
  vm_options.fault_plan = options.fault_plan;

  const bool huge = options.huge;
  fleet::FleetEngine engine(
      config, MakeFleetVmFactory(options.candidate, vm_options),
      [process, huge](uint64_t index) {
        fleet::DemandAgentConfig agent;
        agent.trace = process->Generate(index);
        if (huge) {
          // §4.14 fast-path mode: all demand is THP-backed, so every
          // populated huge frame maps as one 2 MiB EPT entry and the
          // reclaim path exercises the single-flush accounting.
          agent.thp_fraction = 1.0;
        }
        return std::make_unique<fleet::DemandAgent>(agent);
      },
      MakePolicyByName(options.policy, options.policy_config));
  return engine.Run();
}

std::string FleetJson(const FleetScenarioOptions& options,
                      const fleet::FleetResult& result, bool deterministic,
                      int indent) {
  const std::string in(static_cast<size_t>(indent), ' ');
  const std::string out(indent >= 2 ? static_cast<size_t>(indent - 2) : 0,
                        ' ');
  const uint64_t host_bytes =
      options.host_bytes != 0
          ? options.host_bytes
          : static_cast<uint64_t>(
                static_cast<double>(options.vms * options.vm_bytes) /
                options.overcommit);
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016" PRIx64, result.fleet_digest);

  std::string json = "{\n";
  json += in + "\"vms\": " + Num(options.vms) + ",\n";
  json += in + "\"threads\": " +
          Num(static_cast<uint64_t>(options.threads)) + ",\n";
  json += in + "\"policy\": \"" + options.policy + "\",\n";
  json += in + "\"arrival\": \"" + ArrivalKindName(options.arrival.kind) +
          "\",\n";
  json += in + "\"candidate\": \"" + Name(options.candidate) + "\",\n";
  // Validators relax reclaim-SLO expectations for fault-injected runs
  // (a quarantined VM legitimately never satisfies the spike).
  json += in + "\"fault_plan\": \"" +
          (options.fault_plan.enabled() ? options.fault_plan.ToString()
                                        : std::string()) +
          "\",\n";
  json += in + "\"vm_mib\": " + Num(options.vm_bytes / kMiB) + ",\n";
  json += in + "\"host_gib\": " +
          Num(static_cast<double>(host_bytes) / static_cast<double>(kGiB)) +
          ",\n";
  json += in + "\"horizon_s\": " +
          Num(static_cast<uint64_t>(options.horizon / sim::kSec)) + ",\n";
  json += in + "\"epoch_s\": " +
          Num(static_cast<uint64_t>(options.epoch / sim::kSec)) + ",\n";
  json += in + "\"deterministic\": " +
          std::string(deterministic ? "true" : "false") + ",\n";
  json += in + "\"fleet_digest\": \"" + digest + "\",\n";
  json += in + "\"resizes\": " + Num(result.slo.resizes) + ",\n";
  json += in + "\"p50_resize_ms\": " + Num(result.slo.p50_resize_ms) + ",\n";
  json += in + "\"p99_resize_ms\": " + Num(result.slo.p99_resize_ms) + ",\n";
  json += in + "\"admission\": {\"granted\": " +
          Num(result.admission.granted) +
          ", \"clipped\": " + Num(result.admission.clipped) +
          ", \"rejected\": " + Num(result.admission.rejected) + "},\n";
  json += in + "\"spike\": {\"vms\": " +
          Num(std::min<uint64_t>(options.spike.vms, options.vms)) +
          ", \"mib\": " + Num(options.spike.bytes / kMiB) +
          ", \"applied\": " +
          std::string(result.slo.spike_applied ? "true" : "false") +
          ", \"satisfied\": " +
          std::string(result.slo.spike_satisfied ? "true" : "false") +
          ", \"time_to_reclaim_ms\": " + Num(result.slo.time_to_reclaim_ms) +
          "},\n";
  json += in + "\"footprint_gib_min\": " + Num(result.footprint_gib_min) +
          ",\n";
  json += in + "\"peak_gib\": " + Num(result.peak_gib) + ",\n";
  json += in + "\"pool_peak_gib\": " +
          Num(static_cast<double>(result.pool_peak_frames) *
              static_cast<double>(kFrameSize) / static_cast<double>(kGiB)) +
          ",\n";
  const telemetry::TelemetryResult& tel = result.telemetry;
  char tel_digest[32];
  std::snprintf(tel_digest, sizeof(tel_digest), "0x%016" PRIx64,
                tel.telemetry_digest);
  char fl_digest[32];
  std::snprintf(fl_digest, sizeof(fl_digest), "0x%016" PRIx64,
                tel.flight_digest);
  json += in + "\"telemetry\": {\"enabled\": " +
          std::string(tel.enabled ? "true" : "false") +
          ", \"epochs\": " + Num(tel.epochs) +
          ", \"alerts\": " + Num(tel.alerts) +
          ", \"flight_dumps\": " + Num(tel.flight_dumps) +
          ", \"telemetry_digest\": \"" + tel_digest +
          "\", \"flight_digest\": \"" + fl_digest + "\"},\n";
  // Fleet-wide huge-frame reclaim split (§4.14); the share is 1.0 when
  // the backend reclaimed nothing (or has no huge-granular path).
  const hv::HugeReclaimStats& hr = result.huge_reclaim;
  json += in + "\"huge\": {\"mode\": " +
          std::string(options.huge ? "true" : "false") +
          ", \"reclaim_untouched\": " + Num(hr.untouched) +
          ", \"reclaim_2m\": " + Num(hr.via_2m) +
          ", \"reclaim_4k\": " + Num(hr.via_4k) +
          ", \"share\": " + Num(hr.Share()) + "},\n";
  json += in + "\"wall_ms\": " + Num(result.wall_ms) + "\n";
  json += out + "}";
  return json;
}

}  // namespace hyperalloc::bench
