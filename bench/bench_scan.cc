// E10 — validates the §3.3 scan-cost claim with real wall-clock
// measurements: "we access 2*512/(8*64) + 16*512/(8*64) = 18 consecutive
// cache lines to scan 1 GiB of guest-physical memory for free huge
// pages". Scans the R array (2 bit/huge) and the shared area index
// (16 bit/huge) of progressively larger guest memories.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/core/reclaim_states.h"
#include "src/llfree/llfree.h"

namespace hyperalloc {
namespace {

void BM_ReclamationScan(benchmark::State& state) {
  const uint64_t gib = static_cast<uint64_t>(state.range(0));
  const uint64_t frames = gib * kGiB / kFrameSize;
  const uint64_t num_huge = frames / kFramesPerHuge;

  llfree::SharedState shared(frames, llfree::Config{});
  llfree::LLFree alloc(&shared);
  core::ReclaimStateArray states(num_huge);
  for (HugeId h = 0; h < num_huge; h += 3) {
    states.Set(h, core::ReclaimState::kInstalled);
  }

  uint64_t found = 0;
  for (auto _ : state) {
    // The monitor's periodic scan: R == Installed && area free huge.
    for (HugeId h = 0; h < num_huge; ++h) {
      if (states.Get(h) != core::ReclaimState::kInstalled) {
        continue;
      }
      const llfree::AreaEntry entry = alloc.ReadArea(h);
      if (entry.IsFreeHuge() && !entry.evicted) {
        ++found;
      }
    }
    benchmark::DoNotOptimize(found);
  }
  // State footprint per GiB of guest memory.
  const uint64_t state_bytes =
      states.ByteSize() + num_huge * sizeof(uint16_t);
  const uint64_t cache_lines = (state_bytes + 63) / 64;
  state.counters["cache_lines_per_GiB"] =
      static_cast<double>(cache_lines) / static_cast<double>(gib);
  state.counters["scan_GiB_per_s"] = benchmark::Counter(
      static_cast<double>(gib), benchmark::Counter::kIsIterationInvariantRate);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() *
                                               state_bytes));
}
BENCHMARK(BM_ReclamationScan)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The same scan expressed through the monitor's accounting (virtual
// time), confirming the 18-lines/GiB formula used for cost charging.
void BM_ScanStateFootprint(benchmark::State& state) {
  const uint64_t gib = static_cast<uint64_t>(state.range(0));
  const uint64_t num_huge = gib * kGiB / kHugeSize;
  core::ReclaimStateArray states(num_huge);
  for (auto _ : state) {
    benchmark::DoNotOptimize(states.CountState(core::ReclaimState::kSoft));
  }
  const double lines_r =
      static_cast<double>((states.ByteSize() + 63) / 64);
  const double lines_area =
      static_cast<double>((num_huge * 2 + 63) / 64);
  state.counters["lines_per_GiB"] =
      (lines_r + lines_area) / static_cast<double>(gib);
}
BENCHMARK(BM_ScanStateFootprint)->Arg(1)->Arg(16);

}  // namespace
}  // namespace hyperalloc

BENCHMARK_MAIN();
