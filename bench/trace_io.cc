#include "bench/trace_io.h"

#include <cstdio>
#include <string_view>

#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace hyperalloc::bench {

TraceOutput::TraceOutput(int argc, char** argv) {
  constexpr std::string_view kFlag = "--trace-out";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() > kFlag.size() + 1 && arg.substr(0, kFlag.size()) == kFlag &&
        arg[kFlag.size()] == '=') {
      path_ = std::string(arg.substr(kFlag.size() + 1));
    } else if (arg == kFlag && i + 1 < argc) {
      path_ = argv[++i];
    }
  }
  if (path_.empty()) {
    return;
  }
#if HYPERALLOC_TRACE
  // Benches emit from a single thread; one big ring keeps whole runs.
  trace::Tracer::Global().SetCapacity(size_t{1} << 20);
  trace::Tracer::Global().SetEnabled(true);
  trace::SpanTracer::Global().SetCapacity(size_t{1} << 20);
  trace::SpanTracer::Global().SetEnabled(true);
#else
  std::fprintf(stderr,
               "warning: --trace-out ignored (built with "
               "HYPERALLOC_TRACE=0)\n");
  path_.clear();
#endif
}

TraceOutput::~TraceOutput() {
#if HYPERALLOC_TRACE
  if (path_.empty()) {
    return;
  }
  trace::Tracer::Global().SetEnabled(false);
  trace::Tracer::Global().SetTimeSource(nullptr);
  trace::SpanTracer::Global().SetEnabled(false);
  trace::WriteTraceArtifact(path_);
  std::fprintf(stderr, "trace written to %s\n", path_.c_str());
#endif
}

}  // namespace hyperalloc::bench
