// Machine-readable performance runner for the paths this repo's perf
// trajectory tracks: LLFree get/put (single-frame and batched), the
// sharded host frame pool, the span-attribution closure of a HyperAlloc
// resize, the compile fleet (the old multi-VM experiment, now a fleet
// client), the policy-driven fleet scenario at 1024 VMs (128 in
// smoke), and the fleet telemetry pipeline (sampling overhead, alert
// counts, flight-recorder determinism). Emits one JSON document (default
// BENCH_PR10.json; schema checked by scripts/check_bench_json.py,
// regressions gated by scripts/perf_gate.py) so runs are comparable
// across commits.
//
//   --smoke          small sizes for CI (seconds, not minutes)
//   --out=PATH       output path (default BENCH_PR10.json)
//   --threads=N      host threads for the pool, multi-VM, and fleet
//                    benches (default 4; the determinism checks always
//                    also run single-threaded and compare series/digests)
//   --batch=N        train size for the batched LLFree bench (default
//                    512 base frames per GetBatch/PutBatch round)
//   --trace-out=PATH writes the attribution run's span tree as a
//                    Perfetto/Chrome trace (PATH itself when it ends in
//                    .json), plus PATH.spans.csv (the ha_trace_tool
//                    input) and PATH.prom (Prometheus exposition)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/fleet_bench.h"
#include "src/core/hyperalloc.h"
#include "src/guest/compaction.h"
#include "src/llfree/frame_cache.h"
#include "src/llfree/llfree.h"
#include "src/trace/export.h"
#include "src/trace/span.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct OpsResult {
  uint64_t ops = 0;
  double wall_ms = 0.0;
  double ops_per_sec = 0.0;

  void Finish(Clock::time_point start) {
    wall_ms = MsSince(start);
    ops_per_sec = wall_ms > 0.0 ? static_cast<double>(ops) / wall_ms * 1e3
                                : 0.0;
  }
};

// Single-threaded LLFree get/put throughput: batches of base-frame and
// huge-frame allocations, freed in order (the allocator hot path every
// guest operation rides on).
OpsResult BenchLLFreeAllocFree(bool smoke) {
  const uint64_t frames = 1ull << (smoke ? 16 : 20);
  llfree::Config config;
  config.cores = 4;
  llfree::SharedState state(frames, config);
  llfree::LLFree alloc(&state);

  const int rounds = smoke ? 200 : 4000;
  constexpr int kBatch = 512;
  std::vector<FrameId> held;
  held.reserve(kBatch);

  OpsResult result;
  const Clock::time_point start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    const unsigned core = static_cast<unsigned>(round % 4);
    const unsigned order = round % 8 == 0 ? kHugeOrder : 0;
    for (int i = 0; i < kBatch; ++i) {
      const Result<FrameId> r = alloc.Get(core, order, AllocType::kMovable);
      if (!r.ok()) {
        break;
      }
      held.push_back(*r);
    }
    for (const FrameId frame : held) {
      alloc.Put(frame, order);
    }
    result.ops += 2 * held.size();
    held.clear();
  }
  result.Finish(start);
  return result;
}

// Batched vs single-frame hot path, same allocator shape: order-0 trains
// of `batch` frames claimed word-at-a-time via GetBatch/PutBatch against
// the same volume of per-frame Get/Put transactions, plus the per-core
// FrameCache layered over the batch API. Each variant runs on a fresh
// allocator so state is identical. speedup_vs_single is the perf-gate
// metric (scripts/perf_gate.py FLOORS): both sides run in-process on the
// same host, so the ratio cancels machine speed.
struct BatchBenchResult {
  OpsResult batched;
  OpsResult single;
  OpsResult cached;
  double speedup_vs_single = 0.0;
  unsigned batch = 0;
};

BatchBenchResult BenchLLFreeBatchAllocFree(bool smoke, unsigned batch) {
  const uint64_t frames = 1ull << (smoke ? 16 : 20);
  llfree::Config config;
  config.cores = 4;
  const int rounds = smoke ? 200 : 4000;

  BatchBenchResult result;
  result.batch = batch;
  std::vector<FrameId> held;
  held.reserve(batch);

  {
    llfree::SharedState state(frames, config);
    llfree::LLFree alloc(&state);
    const Clock::time_point start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
      const unsigned core = static_cast<unsigned>(round % 4);
      const unsigned got =
          alloc.GetBatch(core, 0, batch, AllocType::kMovable, &held);
      alloc.PutBatch(held, 0);
      result.batched.ops += 2 * got;
      held.clear();
    }
    result.batched.Finish(start);
  }
  {
    llfree::SharedState state(frames, config);
    llfree::LLFree alloc(&state);
    const Clock::time_point start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
      const unsigned core = static_cast<unsigned>(round % 4);
      for (unsigned i = 0; i < batch; ++i) {
        const Result<FrameId> r = alloc.Get(core, 0, AllocType::kMovable);
        if (!r.ok()) {
          break;
        }
        held.push_back(*r);
      }
      for (const FrameId frame : held) {
        alloc.Put(frame, 0);
      }
      result.single.ops += 2 * held.size();
      held.clear();
    }
    result.single.Finish(start);
  }
  {
    llfree::SharedState state(frames, config);
    llfree::LLFree alloc(&state);
    llfree::FrameCache::CacheConfig cc;
    cc.slots = 4;
    cc.capacity = batch;
    cc.refill = std::max(1u, batch / 2);
    llfree::FrameCache cache(&alloc, cc);
    const Clock::time_point start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
      const unsigned core = static_cast<unsigned>(round % 4);
      for (unsigned i = 0; i < batch; ++i) {
        const Result<FrameId> r = cache.Get(core, 0, AllocType::kMovable);
        if (!r.ok()) {
          break;
        }
        held.push_back(*r);
      }
      for (const FrameId frame : held) {
        cache.Put(core, frame, 0, AllocType::kMovable);
      }
      result.cached.ops += 2 * held.size();
      held.clear();
    }
    cache.Drain();
    result.cached.Finish(start);
  }
  if (result.single.ops_per_sec > 0.0) {
    result.speedup_vs_single =
        result.batched.ops_per_sec / result.single.ops_per_sec;
  }
  return result;
}

// Multi-threaded TryReserve/Release storm on one pool. Mixed batch sizes
// exercise the shard fast path, the batched global refill/drain, and —
// because the pool is sized near the demand — the cross-shard
// rebalancer. The quiescent invariant (credits == total - used, used ==
// 0) is validated after the threads join.
OpsResult BenchHostPool(unsigned threads, bool smoke, bool* invariant_ok,
                        uint64_t* refills, uint64_t* drains,
                        uint64_t* rebalances, uint64_t* rebalance_skips) {
  // 32 MiB worth of frames — smaller than even one thread's outstanding
  // window (64 batches averaging 256 frames), so admission runs at the
  // capacity limit where it has to raid other shards' credits (the
  // rebalancer path) and reservations legitimately fail, however the OS
  // schedules the threads.
  hv::HostMemory pool(1ull << 13);
  const int iters = smoke ? 40000 : 800000;

  auto worker = [&pool, iters](uint64_t* ops) {
    std::vector<uint64_t> outstanding;
    outstanding.reserve(64);
    uint64_t local_ops = 0;
    for (int i = 0; i < iters; ++i) {
      const uint64_t batch = static_cast<uint64_t>(i % 7 + 1) * 64;
      if (outstanding.size() < 64 && pool.TryReserve(batch)) {
        outstanding.push_back(batch);
      } else if (!outstanding.empty()) {
        pool.Release(outstanding.back());
        outstanding.pop_back();
      }
      ++local_ops;
    }
    for (const uint64_t batch : outstanding) {
      pool.Release(batch);
    }
    *ops = local_ops;
  };

  std::vector<uint64_t> ops(threads, 0);
  OpsResult result;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool_threads.emplace_back(worker, &ops[t]);
  }
  for (std::thread& t : pool_threads) {
    t.join();
  }
  for (const uint64_t n : ops) {
    result.ops += n;
  }
  result.Finish(start);
  *invariant_ok = pool.used_frames() == 0 &&
                  pool.DebugFreeCredits() == pool.total_frames();
  *refills = pool.refills();
  *drains = pool.drains();
  *rebalances = pool.rebalances();
  *rebalance_skips = pool.rebalance_skips();
  return result;
}

// ----------------------------------------------------------------------
// Span attribution: one HyperAlloc shrink+grow cycle with the span
// tracer on. The closure property under test: every cost-model charge of
// a request lands in exactly one span of that request's trace, so the
// per-trace sum of charge_ns equals the root span's virtual duration.
// ----------------------------------------------------------------------

struct PhaseAttribution {
  bool found = false;          // the request root span was located
  uint64_t total_vns = 0;      // root span virtual duration
  uint64_t charged_ns = 0;     // sum of charge_ns over the trace
  bool charge_closed = false;  // charged_ns == total_vns
  double wall_ms = 0.0;
  double virtual_wall_skew = 0.0;  // virtual ns per wall ns
  uint64_t layer_ns[trace::kNumLayers] = {};
};

struct AttributionBench {
  bool enabled = false;  // false when built with HYPERALLOC_TRACE=0
  PhaseAttribution inflate;  // shrink (hard reclamation)
  PhaseAttribution deflate;  // grow (return)
  uint64_t dropped_spans = 0;
  double traced_wall_ms = 0.0;
  double untraced_wall_ms = 0.0;
  double trace_overhead_pct = 0.0;
  std::vector<trace::SpanRecord> spans;  // both phases, for --trace-out
};

#if HYPERALLOC_TRACE

PhaseAttribution AttributePhase(const std::vector<trace::SpanRecord>& spans,
                                const char* root_name, double wall_ms) {
  PhaseAttribution phase;
  phase.wall_ms = wall_ms;
  const trace::SpanRecord* root = nullptr;
  for (const trace::SpanRecord& span : spans) {
    if (span.layer == trace::Layer::kRequest &&
        std::strcmp(span.name, root_name) == 0) {
      root = &span;
      break;
    }
  }
  if (root == nullptr) {
    return phase;
  }
  phase.found = true;
  phase.total_vns = root->virtual_ns();
  for (const trace::SpanRecord& span : spans) {
    if (span.trace_id != root->trace_id) {
      continue;
    }
    phase.charged_ns += span.charge_ns;
    phase.layer_ns[static_cast<unsigned>(span.layer)] += span.charge_ns;
  }
  phase.charge_closed = phase.charged_ns == phase.total_vns;
  if (wall_ms > 0.0) {
    phase.virtual_wall_skew =
        static_cast<double>(phase.total_vns) / (wall_ms * 1e6);
  }
  return phase;
}

AttributionBench BenchAttribution() {
  AttributionBench result;
  result.enabled = true;
  trace::SpanTracer& spans = trace::SpanTracer::Global();
  spans.SetCapacity(size_t{1} << 18);
  const uint64_t dropped_before = spans.dropped_spans();

  // One cycle: prepare 6 GiB of touched-then-freed guest memory, shrink
  // the limit to 2 GiB (inflate), grow it back (deflate). With `traced`
  // off this measures the span machinery's wall overhead (arming checks
  // only — the same binary, tracer disabled).
  auto cycle = [&spans](bool traced, AttributionBench* out) {
    spans.SetEnabled(traced);
    SetupOptions options;
    options.memory_bytes = 8 * kGiB;
    options.host_bytes = 16 * kGiB;
    Setup setup = MakeSetup(Candidate::kHyperAlloc, options);
    workloads::MemoryPool pool(setup.vm.get());
    const uint64_t prep = pool.AllocRegion(6 * kGiB, /*thp_fraction=*/0.95, 0);
    pool.FreeRegion(prep, 0);
    setup.vm->PurgeAllocatorCaches();
    (void)spans.Drain();  // prep-phase install traces are not under test

    const Clock::time_point t_shrink = Clock::now();
    setup.SetLimit(2 * kGiB);
    const double shrink_ms = MsSince(t_shrink);
    if (traced && out != nullptr) {
      std::vector<trace::SpanRecord> shrink_spans = spans.Drain();
      out->inflate = AttributePhase(shrink_spans, "request.inflate",
                                    shrink_ms);
      out->spans.insert(out->spans.end(), shrink_spans.begin(),
                        shrink_spans.end());
    }

    const Clock::time_point t_grow = Clock::now();
    setup.SetLimit(8 * kGiB);
    const double grow_ms = MsSince(t_grow);
    if (traced && out != nullptr) {
      std::vector<trace::SpanRecord> grow_spans = spans.Drain();
      out->deflate = AttributePhase(grow_spans, "request.deflate", grow_ms);
      out->spans.insert(out->spans.end(), grow_spans.begin(),
                        grow_spans.end());
    }
    spans.SetEnabled(false);
    return shrink_ms + grow_ms;
  };

  result.traced_wall_ms = cycle(true, &result);
  result.dropped_spans = spans.dropped_spans() - dropped_before;
  result.untraced_wall_ms = cycle(false, nullptr);
  if (result.untraced_wall_ms > 0.0) {
    result.trace_overhead_pct = (result.traced_wall_ms -
                                 result.untraced_wall_ms) /
                                result.untraced_wall_ms * 100.0;
  }
  return result;
}

// ----------------------------------------------------------------------
// Span determinism across thread counts: canonicalized per-VM span
// streams (virtual-time fields only, host-pool slow paths excluded —
// refills/rebalances depend on the OS interleaving by design) must be
// identical between the 1-thread and N-thread multi-VM runs.
// ----------------------------------------------------------------------

std::vector<std::vector<trace::SpanRecord>> CanonicalPerVmStreams(
    std::vector<trace::SpanRecord> spans, int vms) {
  std::vector<std::vector<trace::SpanRecord>> streams(
      static_cast<size_t>(vms));
  // seq is assigned by one global counter at emission; each VM's spans
  // are emitted in program order on whichever thread runs it, so sorting
  // a VM's spans by seq restores that VM's deterministic program order.
  std::sort(spans.begin(), spans.end(),
            [](const trace::SpanRecord& a, const trace::SpanRecord& b) {
              return a.seq < b.seq;
            });
  for (const trace::SpanRecord& span : spans) {
    if (span.layer == trace::Layer::kHostPool) {
      continue;
    }
    if (span.vm < static_cast<uint32_t>(vms)) {
      streams[span.vm].push_back(span);
    }
  }
  return streams;
}

bool SpanStreamsEqual(const std::vector<trace::SpanRecord>& a,
                      const std::vector<trace::SpanRecord>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].layer != b[i].layer || std::strcmp(a[i].name, b[i].name) != 0 ||
        a[i].begin_vns != b[i].begin_vns || a[i].end_vns != b[i].end_vns ||
        a[i].charge_ns != b[i].charge_ns || a[i].frames != b[i].frames) {
      return false;
    }
  }
  return true;
}

#else  // !HYPERALLOC_TRACE

AttributionBench BenchAttribution() { return {}; }

#endif  // HYPERALLOC_TRACE

CompileFleetOptions MultiVmBenchConfig(bool smoke, unsigned threads) {
  CompileFleetOptions config;
  config.vms = 8;
  config.threads = threads;
  config.candidate = Candidate::kHyperAlloc;
  config.offset = true;
  config.builds_per_vm = 1;
  config.gap = sim::kMin;
  config.offset_step = 30 * sim::kSec;
  config.vm_bytes = kGiB;
  config.host_slack_bytes = 2 * kGiB;
  config.compile.seed = 100;
  config.compile.workers = 4;
  config.compile.compile_units = smoke ? 12 : 120;
  config.compile.link_jobs = 2;
  config.compile.max_parallel_links = 1;
  config.compile.unit_ws_min = 8 * kMiB;
  config.compile.unit_ws_max = 32 * kMiB;
  config.compile.link_ws_min = 64 * kMiB;
  config.compile.link_ws_max = 96 * kMiB;
  config.compile.cache_read_per_unit = kMiB;
  config.compile.artifact_per_unit = kMiB;
  config.compile.slab_per_job = kMiB;
  return config;
}

struct MultiVmBench {
  int vms = 0;
  unsigned threads = 0;
  double wall_ms_single = 0.0;
  double wall_ms_parallel = 0.0;
  bool deterministic = false;
  double footprint_gib_min = 0.0;
  double peak_gib = 0.0;
  // Span-stream determinism guard (satellite of the RSS-series one):
  // checked only when spans are compiled in and no ring overflowed.
  bool spans_checked = false;
  bool spans_deterministic = false;
  uint64_t spans_single = 0;
  uint64_t spans_dropped = 0;
};

MultiVmBench BenchMultiVm(bool smoke, unsigned threads) {
  CompileFleetOptions config = MultiVmBenchConfig(smoke, 1);
#if HYPERALLOC_TRACE
  trace::SpanTracer& spans = trace::SpanTracer::Global();
  spans.SetCapacity(size_t{1} << 19);
  const uint64_t dropped_before = spans.dropped_spans();
  (void)spans.Drain();
  spans.SetEnabled(true);
#endif
  const fleet::FleetResult single = RunCompileFleet(config);
#if HYPERALLOC_TRACE
  const std::vector<trace::SpanRecord> single_spans = spans.Drain();
#endif
  config.threads = threads;
  const fleet::FleetResult parallel = RunCompileFleet(config);
#if HYPERALLOC_TRACE
  const std::vector<trace::SpanRecord> parallel_spans = spans.Drain();
  spans.SetEnabled(false);
#endif

  MultiVmBench result;
  result.vms = config.vms;
  result.threads = threads;
  result.wall_ms_single = single.wall_ms;
  result.wall_ms_parallel = parallel.wall_ms;
  result.footprint_gib_min = single.footprint_gib_min;
  result.peak_gib = single.peak_gib;
  result.deterministic =
      single.per_vm_rss.size() == parallel.per_vm_rss.size() &&
      single.fleet_digest == parallel.fleet_digest &&
      single.vm_digests == parallel.vm_digests;
  for (size_t i = 0; result.deterministic && i < single.per_vm_rss.size();
       ++i) {
    result.deterministic =
        fleet::SeriesEqual(single.per_vm_rss[i], parallel.per_vm_rss[i]);
  }
#if HYPERALLOC_TRACE
  result.spans_single = single_spans.size();
  result.spans_dropped = spans.dropped_spans() - dropped_before;
  result.spans_checked = result.spans_dropped == 0;
  if (result.spans_checked) {
    const auto a = CanonicalPerVmStreams(single_spans, config.vms);
    const auto b = CanonicalPerVmStreams(parallel_spans, config.vms);
    result.spans_deterministic = true;
    for (int i = 0; i < config.vms; ++i) {
      if (!SpanStreamsEqual(a[static_cast<size_t>(i)],
                            b[static_cast<size_t>(i)])) {
        result.spans_deterministic = false;
        break;
      }
    }
  }
#endif
  return result;
}

// ----------------------------------------------------------------------
// Fleet scenario: 1024 (128 in smoke) 64 MiB VMs on a 1.6x- (1.5x-)
// overcommitted host, bursty demand, proportional-share policy, with a
// pressure spike probing the time-to-reclaim SLO. Determinism means
// byte-identical per-VM outcome digests between 1 and N worker threads.
// ----------------------------------------------------------------------

struct FleetBench {
  FleetScenarioOptions options;
  fleet::FleetResult result;     // the N-thread run (reported)
  bool deterministic = false;
  // Span cross-check: resize latencies re-derived from request-layer
  // spans of a small traced run must reproduce the engine's p99 exactly
  // (same nearest-rank method, same virtual instants).
  bool span_checked = false;
  bool span_matched = false;
  double span_p99_ms = 0.0;
  double engine_p99_ms = 0.0;
  // Telemetry: the N-thread run samples the pipeline every barrier
  // (wall_ms_on is its wall time); the same scenario with telemetry
  // disabled gives wall_ms_off. The pipeline's stream digest must match
  // the 1-thread reference (telemetry_deterministic).
  bool telemetry_deterministic = false;
  double wall_ms_on = 0.0;
  double wall_ms_off = 0.0;
  double telemetry_overhead_pct = 0.0;
  // Flight-recorder probe: a fault plan aggressive enough to quarantine
  // VMs mid-run must freeze at least one schema-valid dump, and the dump
  // bytes must be identical across thread counts.
  uint64_t flight_dumps = 0;
  uint64_t flight_ring_epochs = 0;
  uint64_t flight_digest = 0;
  bool flight_deterministic = false;
};

FleetBench BenchFleet(bool smoke, unsigned threads) {
  FleetBench bench;
  bench.options.vms = smoke ? 128 : 1024;
  bench.options.threads = threads;
  // Overcommit is capped where the time-to-reclaim SLO stays feasible:
  // above ~1.8x the fleet's summed want (demand + growth headroom)
  // permanently exceeds usable capacity, proportional-share scales every
  // VM below its full demand, and no amount of reclaim can ever satisfy
  // a spiked VM. The smoke fleet is small enough that the 32-VM spike is
  // a quarter of it, so it gets a little more slack still.
  bench.options.overcommit = smoke ? 1.5 : 1.6;

  FleetScenarioOptions single = bench.options;
  single.threads = 1;
  const fleet::FleetResult reference = RunFleetScenario(single);
  bench.result = RunFleetScenario(bench.options);
  bench.deterministic =
      reference.fleet_digest == bench.result.fleet_digest &&
      reference.vm_digests == bench.result.vm_digests;
  bench.telemetry_deterministic =
      reference.telemetry.telemetry_digest ==
          bench.result.telemetry.telemetry_digest &&
      reference.telemetry.flight_digest ==
          bench.result.telemetry.flight_digest;
  // Telemetry overhead: the identical scenario with the pipeline off.
  // Both sides are sub-second wall-clock runs, so take the minimum of
  // three samples each — the least-noise estimate of the true cost.
  bench.wall_ms_on = bench.result.wall_ms;
  FleetScenarioOptions off = bench.options;
  off.telemetry.enabled = false;
  bench.wall_ms_off = RunFleetScenario(off).wall_ms;
  for (int i = 0; i < 2; ++i) {
    bench.wall_ms_on =
        std::min(bench.wall_ms_on, RunFleetScenario(bench.options).wall_ms);
    bench.wall_ms_off =
        std::min(bench.wall_ms_off, RunFleetScenario(off).wall_ms);
  }
  bench.telemetry_overhead_pct =
      bench.wall_ms_off > 0.0
          ? (bench.wall_ms_on - bench.wall_ms_off) / bench.wall_ms_off * 100.0
          : 0.0;

  // Flight-recorder probe: permanent unmap faults aggressive enough to
  // push VMs over the frame-quarantine limit mid-run. Small fleet — the
  // point is the dump, not throughput.
  FleetScenarioOptions flight = bench.options;
  flight.vms = 128;
  // Pinned regardless of --smoke: enough overcommit that the policy
  // keeps deflating (each deflate is an unmap, i.e. a fault site), so
  // the permanent-fault count crosses the VM-quarantine limit.
  flight.overcommit = 1.6;
  flight.fault_plan.seed = 42;
  std::string plan_error;
  HA_CHECK(fault::Plan::Parse("ept_unmap:0.6!", &flight.fault_plan,
                              &plan_error));
  FleetScenarioOptions flight_single = flight;
  flight_single.threads = 1;
  const fleet::FleetResult flight_ref = RunFleetScenario(flight_single);
  const fleet::FleetResult flight_result = RunFleetScenario(flight);
  bench.flight_dumps = flight_result.telemetry.flight_dumps;
  bench.flight_digest = flight_result.telemetry.flight_digest;
  bench.flight_ring_epochs =
      flight_result.telemetry.dumps.empty()
          ? 0
          : flight_result.telemetry.dumps.front().ring_epochs;
  bench.flight_deterministic =
      flight_ref.telemetry.flight_digest ==
          flight_result.telemetry.flight_digest &&
      flight_ref.telemetry.telemetry_digest ==
          flight_result.telemetry.telemetry_digest;

#if HYPERALLOC_TRACE
  // Traced mini-fleet for the span pipeline cross-check. Every resize
  // the control loop issues opens a request-layer root span on the VM's
  // virtual clock; its virtual duration is exactly the engine's
  // (completed - issued). The only request spans NOT in the engine's
  // records are the t=0 initial-limit shrinks — filtered by begin_vns.
  FleetScenarioOptions traced = bench.options;
  traced.vms = 32;
  traced.threads = 1;
  traced.spike.vms = 8;
  trace::SpanTracer& spans = trace::SpanTracer::Global();
  spans.SetCapacity(size_t{1} << 19);
  (void)spans.Drain();
  spans.SetEnabled(true);
  const fleet::FleetResult traced_result = RunFleetScenario(traced);
  const std::vector<trace::SpanRecord> traced_spans = spans.Drain();
  spans.SetEnabled(false);
  std::vector<double> span_ms;
  for (const trace::SpanRecord& span : traced_spans) {
    if (span.layer == trace::Layer::kRequest && span.begin_vns > 0) {
      span_ms.push_back(static_cast<double>(span.virtual_ns()) / 1e6);
    }
  }
  bench.span_checked = span_ms.size() == traced_result.slo.resizes;
  bench.span_p99_ms = fleet::PercentileMs(span_ms, 0.99);
  bench.engine_p99_ms = traced_result.slo.p99_resize_ms;
  bench.span_matched =
      bench.span_checked &&
      std::abs(bench.span_p99_ms - bench.engine_p99_ms) < 1e-9;
#endif
  return bench;
}

// ----------------------------------------------------------------------
// Huge-frame fast path (§4.14): churn a HyperAlloc VM into a splintered
// state (straggler allocations pinning half the areas), then shrink the
// limit. The no-compaction variant can only hard-reclaim the areas the
// churn never splintered; the compaction variant first migrates the
// stragglers out (Compactor LLFree pass) and reclaims the re-formed
// huge frames too. Both report the monitor's reclaim-share split and
// the EPT's flush-entry savings versus all-4K invalidation. A 4 KiB
// balloon probe on THP-backed memory provides the contrast numbers
// (2M-entry demotions, no flush savings).
// ----------------------------------------------------------------------

struct HugeFrameVariant {
  bool compaction = false;
  double frag_before = 0.0;  // GuestVm::FragmentationScore() after churn
  double frag_after = 0.0;   // after the compaction pass (== before when off)
  uint64_t compaction_blocks = 0;
  uint64_t compaction_migrations = 0;
  uint64_t reclaim_untouched = 0;
  uint64_t reclaim_2m = 0;
  uint64_t reclaim_4k = 0;
  double share = 0.0;
  double reclaimed_mib = 0.0;
  uint64_t flush_entries_2m = 0;
  uint64_t flush_entries_4k = 0;
  uint64_t flush_entries_all4k = 0;  // what per-4K flushing would have cost
  double flush_savings = 0.0;        // 1 - actual entries / all-4K entries
  double wall_ms = 0.0;
};

struct HugeFrameBench {
  uint64_t memory_mib = 0;
  HugeFrameVariant no_compaction;
  HugeFrameVariant with_compaction;
  // Headline (gated) metrics: the worse share of the two variants and
  // the compaction variant's migration/flush numbers.
  double share = 0.0;
  uint64_t compaction_migrations = 0;
  double flush_savings = 0.0;
  // 4 KiB balloon contrast probe: reclaiming THP-backed memory page by
  // page demotes 2M entries and invalidates per-4K.
  uint64_t balloon_demotions_2m = 0;
  double balloon_flush_savings = 0.0;
};

HugeFrameVariant RunHugeFrameVariant(bool smoke, bool compact) {
  HugeFrameVariant variant;
  variant.compaction = compact;
  const Clock::time_point start = Clock::now();

  SetupOptions options;
  options.memory_bytes = smoke ? 2 * kGiB : 4 * kGiB;
  options.host_bytes = 2 * options.memory_bytes;
  Setup setup = MakeSetup(Candidate::kHyperAlloc, options);
  workloads::MemoryPool pool(setup.vm.get());

  // Churn half the memory with 64-frame regions: allocate them ALL
  // first (they pack areas densely), then free seven of every eight.
  // Interleaving alloc/free would not fragment — the allocator reuses
  // just-freed frames — but the two-pass order leaves every churned
  // area holding one 64-frame straggler run: under the compaction
  // candidate threshold, yet enough to block order-9 reclaim.
  const uint64_t region_bytes = 64 * kFrameSize;
  const uint64_t regions = options.memory_bytes / 2 / region_bytes;
  std::vector<uint64_t> ids;
  ids.reserve(regions);
  for (uint64_t i = 0; i < regions; ++i) {
    const uint64_t id = pool.AllocRegion(region_bytes, /*thp_fraction=*/0.0,
                                         /*core=*/0);
    if (id == 0) {
      break;
    }
    ids.push_back(id);
  }
  for (uint64_t i = 0; i < ids.size(); ++i) {
    if (i % 8 != 0) {
      pool.FreeRegion(ids[i], 0);
    }
  }
  setup.vm->PurgeAllocatorCaches();
  variant.frag_before = setup.vm->FragmentationScore();

  if (compact) {
    guest::CompactionConfig config;
    guest::Compactor compactor(setup.vm.get(), config);
    compactor.CompactPass(~0ull);
    variant.compaction_blocks = compactor.blocks_compacted();
    variant.compaction_migrations = compactor.frames_migrated();
  }
  variant.frag_after = setup.vm->FragmentationScore();

  // Hard reclamation to a quarter of memory. The kept stragglers pin
  // ~1/16 of memory, so the target is feasible — but only the compacted
  // variant has enough whole free huge frames to actually reach it.
  setup.SetLimit(options.memory_bytes / 4);

  const auto* monitor =
      static_cast<const core::HyperAllocMonitor*>(setup.deflator.get());
  variant.reclaim_untouched = monitor->reclaim_untouched();
  variant.reclaim_2m = monitor->reclaim_unmapped_2m();
  variant.reclaim_4k = monitor->reclaim_unmapped_4k();
  variant.share = monitor->HugeReclaimShare();
  variant.reclaimed_mib =
      static_cast<double>(monitor->hard_reclaimed_bytes()) /
      static_cast<double>(kMiB);
  const hv::Ept& ept = setup.vm->ept();
  variant.flush_entries_2m = ept.entries_invalidated_2m();
  variant.flush_entries_4k = ept.entries_invalidated_4k();
  variant.flush_entries_all4k = ept.tlb_flushed_frames();
  if (variant.flush_entries_all4k > 0) {
    variant.flush_savings =
        1.0 - static_cast<double>(variant.flush_entries_2m +
                                  variant.flush_entries_4k) /
                  static_cast<double>(variant.flush_entries_all4k);
  }
  variant.wall_ms = MsSince(start);
  return variant;
}

HugeFrameBench BenchHugeFrame(bool smoke) {
  HugeFrameBench bench;
  bench.memory_mib = (smoke ? 2 * kGiB : 4 * kGiB) / kMiB;
  bench.no_compaction = RunHugeFrameVariant(smoke, false);
  bench.with_compaction = RunHugeFrameVariant(smoke, true);
  bench.share =
      std::min(bench.no_compaction.share, bench.with_compaction.share);
  bench.compaction_migrations = bench.with_compaction.compaction_migrations;
  bench.flush_savings = bench.with_compaction.flush_savings;

  // Contrast probe: 4 KiB ballooning of THP-backed-then-freed memory.
  // Every reclaimed page punches a hole in a live 2 MiB entry — the
  // first hole demotes the entry, the rest invalidate per-4K.
  {
    SetupOptions options;
    options.memory_bytes = kGiB;
    options.host_bytes = 2 * kGiB;
    Setup setup = MakeSetup(Candidate::kBalloon, options);
    workloads::MemoryPool pool(setup.vm.get());
    const uint64_t id =
        pool.AllocRegion(options.memory_bytes / 2, /*thp_fraction=*/1.0, 0);
    pool.FreeRegion(id, 0);
    setup.vm->PurgeAllocatorCaches();
    setup.SetLimit(options.memory_bytes / 4);
    const hv::Ept& ept = setup.vm->ept();
    bench.balloon_demotions_2m = ept.demotions_2m();
    if (ept.tlb_flushed_frames() > 0) {
      bench.balloon_flush_savings =
          1.0 - static_cast<double>(ept.entries_invalidated_2m() +
                                    ept.entries_invalidated_4k()) /
                    static_cast<double>(ept.tlb_flushed_frames());
    }
  }
  return bench;
}

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

std::string Num(uint64_t value) {
  return std::to_string(value);
}

// Serializes one attribution phase, including per-layer ns + share of
// the root's virtual time (only layers that received charges).
std::string PhaseJson(const PhaseAttribution& phase) {
  std::string json;
  json += "{\n";
  json += "        \"found\": " + std::string(phase.found ? "true" : "false") +
          ",\n";
  json += "        \"total_vns\": " + Num(phase.total_vns) + ",\n";
  json += "        \"charged_ns\": " + Num(phase.charged_ns) + ",\n";
  json += "        \"charge_closed\": " +
          std::string(phase.charge_closed ? "true" : "false") + ",\n";
  json += "        \"wall_ms\": " + Num(phase.wall_ms) + ",\n";
  json += "        \"virtual_wall_skew\": " + Num(phase.virtual_wall_skew) +
          ",\n";
  json += "        \"layers\": {";
  bool first = true;
  for (unsigned layer = 0; layer < trace::kNumLayers; ++layer) {
    if (phase.layer_ns[layer] == 0) {
      continue;
    }
    const double share =
        phase.total_vns > 0
            ? static_cast<double>(phase.layer_ns[layer]) /
                  static_cast<double>(phase.total_vns)
            : 0.0;
    json += std::string(first ? "" : ",") + "\n          \"" +
            trace::Name(static_cast<trace::Layer>(layer)) +
            "\": {\"ns\": " + Num(phase.layer_ns[layer]) +
            ", \"share\": " + Num(share) + "}";
    first = false;
  }
  json += "\n        }\n      }";
  return json;
}

std::string HugeVariantJson(const HugeFrameVariant& variant) {
  std::string json;
  json += "{\n";
  json += "        \"compaction\": " +
          std::string(variant.compaction ? "true" : "false") + ",\n";
  json += "        \"frag_before\": " + Num(variant.frag_before) + ",\n";
  json += "        \"frag_after\": " + Num(variant.frag_after) + ",\n";
  json += "        \"compaction_blocks\": " + Num(variant.compaction_blocks) +
          ",\n";
  json += "        \"compaction_migrations\": " +
          Num(variant.compaction_migrations) + ",\n";
  json += "        \"reclaim_untouched\": " + Num(variant.reclaim_untouched) +
          ",\n";
  json += "        \"reclaim_2m\": " + Num(variant.reclaim_2m) + ",\n";
  json += "        \"reclaim_4k\": " + Num(variant.reclaim_4k) + ",\n";
  json += "        \"share\": " + Num(variant.share) + ",\n";
  json += "        \"reclaimed_mib\": " + Num(variant.reclaimed_mib) + ",\n";
  json += "        \"flush_entries_2m\": " + Num(variant.flush_entries_2m) +
          ",\n";
  json += "        \"flush_entries_4k\": " + Num(variant.flush_entries_4k) +
          ",\n";
  json += "        \"flush_entries_all4k\": " +
          Num(variant.flush_entries_all4k) + ",\n";
  json += "        \"flush_savings\": " + Num(variant.flush_savings) + ",\n";
  json += "        \"wall_ms\": " + Num(variant.wall_ms) + "\n";
  json += "      }";
  return json;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_PR10.json";
  std::string trace_out;
  unsigned threads = 4;
  unsigned batch = 512;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batch = static_cast<unsigned>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    }
  }
  if (threads == 0) {
    threads = 1;
  }
  if (batch == 0) {
    batch = 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();

  std::fprintf(stderr, "[1/7] llfree_alloc_free...\n");
  const OpsResult llfree_result = BenchLLFreeAllocFree(smoke);

  std::fprintf(stderr, "[2/7] llfree_batch_alloc_free (batch %u)...\n",
               batch);
  const BatchBenchResult batch_result =
      BenchLLFreeBatchAllocFree(smoke, batch);

  std::fprintf(stderr, "[3/7] host_reserve_release (%u threads)...\n",
               threads);
  bool invariant_ok = false;
  uint64_t refills = 0;
  uint64_t drains = 0;
  uint64_t rebalances = 0;
  uint64_t rebalance_skips = 0;
  const OpsResult pool_result =
      BenchHostPool(threads, smoke, &invariant_ok, &refills, &drains,
                    &rebalances, &rebalance_skips);

  std::fprintf(stderr, "[4/7] attribution (HyperAlloc shrink+grow)...\n");
  const AttributionBench attribution = BenchAttribution();

  std::fprintf(stderr, "[5/7] multivm (8 VMs, 1 vs %u threads)...\n",
               threads);
  const MultiVmBench multivm = BenchMultiVm(smoke, threads);

  std::fprintf(stderr, "[6/7] fleet (%s VMs, 1 vs %u threads, telemetry "
                       "on/off + flight probe)...\n",
               smoke ? "128" : "1024", threads);
  const FleetBench fleet_bench = BenchFleet(smoke, threads);

  std::fprintf(stderr, "[7/7] huge_frame (churn + shrink, compaction "
                       "off/on + balloon probe)...\n");
  const HugeFrameBench huge_frame = BenchHugeFrame(smoke);

#if HYPERALLOC_TRACE
  if (!trace_out.empty()) {
    const bool json_ext = trace_out.size() >= 5 &&
                          trace_out.compare(trace_out.size() - 5, 5,
                                            ".json") == 0;
    trace::WritePerfettoJson(json_ext ? trace_out
                                      : trace_out + ".perfetto.json",
                             attribution.spans);
    trace::WriteSpansCsv(trace_out + ".spans.csv", attribution.spans);
    trace::WritePrometheus(trace_out + ".prom");
    std::fprintf(stderr, "trace written to %s{,.spans.csv,.prom}\n",
                 trace_out.c_str());
  }
#else
  if (!trace_out.empty()) {
    std::fprintf(stderr, "warning: --trace-out ignored (built with "
                         "HYPERALLOC_TRACE=0)\n");
  }
#endif

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"hyperalloc-bench-v6\",\n";
  json += "  \"pr\": \"PR10\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"hardware_concurrency\": " + Num(uint64_t{hw}) + ",\n";
  json += "  \"note\": \"virtual-time results are deterministic; wall-clock"
          " numbers depend on the host (a single-core host serializes the"
          " multi-VM workers, so parallel wall time only drops with >1"
          " cores)\",\n";
  json += "  \"benches\": {\n";
  json += "    \"llfree_alloc_free\": {\n";
  json += "      \"ops\": " + Num(llfree_result.ops) + ",\n";
  json += "      \"wall_ms\": " + Num(llfree_result.wall_ms) + ",\n";
  json += "      \"ops_per_sec\": " + Num(llfree_result.ops_per_sec) + "\n";
  json += "    },\n";
  json += "    \"llfree_batch_alloc_free\": {\n";
  json += "      \"batch\": " + Num(uint64_t{batch_result.batch}) + ",\n";
  json += "      \"ops\": " + Num(batch_result.batched.ops) + ",\n";
  json += "      \"wall_ms\": " + Num(batch_result.batched.wall_ms) + ",\n";
  json += "      \"ops_per_sec\": " + Num(batch_result.batched.ops_per_sec) +
          ",\n";
  json += "      \"single_ops_per_sec\": " +
          Num(batch_result.single.ops_per_sec) + ",\n";
  json += "      \"cached_ops_per_sec\": " +
          Num(batch_result.cached.ops_per_sec) + ",\n";
  json += "      \"speedup_vs_single\": " +
          Num(batch_result.speedup_vs_single) + "\n";
  json += "    },\n";
  json += "    \"host_reserve_release\": {\n";
  json += "      \"threads\": " + Num(uint64_t{threads}) + ",\n";
  json += "      \"ops\": " + Num(pool_result.ops) + ",\n";
  json += "      \"wall_ms\": " + Num(pool_result.wall_ms) + ",\n";
  json += "      \"ops_per_sec\": " + Num(pool_result.ops_per_sec) + ",\n";
  json += "      \"invariant_ok\": " +
          std::string(invariant_ok ? "true" : "false") + ",\n";
  json += "      \"refills\": " + Num(refills) + ",\n";
  json += "      \"drains\": " + Num(drains) + ",\n";
  json += "      \"rebalances\": " + Num(rebalances) + ",\n";
  json += "      \"rebalance_skips\": " + Num(rebalance_skips) + "\n";
  json += "    },\n";
  json += "    \"attribution\": {\n";
  json += "      \"enabled\": " +
          std::string(attribution.enabled ? "true" : "false") + ",\n";
  if (attribution.enabled) {
    json += "      \"candidate\": \"HyperAlloc\",\n";
    json += "      \"dropped_spans\": " + Num(attribution.dropped_spans) +
            ",\n";
    json += "      \"inflate\": " + PhaseJson(attribution.inflate) + ",\n";
    json += "      \"deflate\": " + PhaseJson(attribution.deflate) + ",\n";
    json += "      \"trace_overhead\": {\n";
    json += "        \"traced_wall_ms\": " + Num(attribution.traced_wall_ms) +
            ",\n";
    json += "        \"untraced_wall_ms\": " +
            Num(attribution.untraced_wall_ms) + ",\n";
    json += "        \"overhead_pct\": " +
            Num(attribution.trace_overhead_pct) + "\n";
    json += "      }\n";
  } else {
    json += "      \"note\": \"built with HYPERALLOC_TRACE=0\"\n";
  }
  json += "    },\n";
  json += "    \"multivm\": {\n";
  json += "      \"vms\": " + Num(uint64_t{static_cast<uint64_t>(
                                  multivm.vms)}) + ",\n";
  json += "      \"threads\": " + Num(uint64_t{multivm.threads}) + ",\n";
  json += "      \"wall_ms_single\": " + Num(multivm.wall_ms_single) + ",\n";
  json += "      \"wall_ms_parallel\": " + Num(multivm.wall_ms_parallel) +
          ",\n";
  json += "      \"deterministic\": " +
          std::string(multivm.deterministic ? "true" : "false") + ",\n";
  json += "      \"spans_checked\": " +
          std::string(multivm.spans_checked ? "true" : "false") + ",\n";
  json += "      \"spans_deterministic\": " +
          std::string(multivm.spans_deterministic ? "true" : "false") +
          ",\n";
  json += "      \"spans_single\": " + Num(multivm.spans_single) + ",\n";
  json += "      \"spans_dropped\": " + Num(multivm.spans_dropped) + ",\n";
  json += "      \"footprint_gib_min\": " + Num(multivm.footprint_gib_min) +
          ",\n";
  json += "      \"peak_gib\": " + Num(multivm.peak_gib) + "\n";
  json += "    },\n";
  json += "    \"fleet\": " +
          FleetJson(fleet_bench.options, fleet_bench.result,
                    fleet_bench.deterministic, 6) +
          ",\n";
  json += "    \"fleet_span_check\": {\n";
  json += "      \"checked\": " +
          std::string(fleet_bench.span_checked ? "true" : "false") + ",\n";
  json += "      \"matched\": " +
          std::string(fleet_bench.span_matched ? "true" : "false") + ",\n";
  json += "      \"span_p99_ms\": " + Num(fleet_bench.span_p99_ms) + ",\n";
  json += "      \"engine_p99_ms\": " + Num(fleet_bench.engine_p99_ms) + "\n";
  json += "    },\n";
  char flight_digest[32];
  std::snprintf(flight_digest, sizeof(flight_digest), "0x%016" PRIx64,
                fleet_bench.flight_digest);
  json += "    \"telemetry\": {\n";
  json += "      \"enabled\": " +
          std::string(fleet_bench.result.telemetry.enabled ? "true"
                                                           : "false") +
          ",\n";
  json += "      \"epochs\": " + Num(fleet_bench.result.telemetry.epochs) +
          ",\n";
  json += "      \"alerts\": " + Num(fleet_bench.result.telemetry.alerts) +
          ",\n";
  json += "      \"wall_ms_on\": " + Num(fleet_bench.wall_ms_on) + ",\n";
  json += "      \"wall_ms_off\": " + Num(fleet_bench.wall_ms_off) + ",\n";
  json += "      \"telemetry_overhead_pct\": " +
          Num(fleet_bench.telemetry_overhead_pct) + ",\n";
  json += "      \"deterministic\": " +
          std::string(fleet_bench.telemetry_deterministic ? "true"
                                                          : "false") +
          ",\n";
  json += "      \"flight\": {\"dumps\": " + Num(fleet_bench.flight_dumps) +
          ", \"ring_epochs\": " + Num(fleet_bench.flight_ring_epochs) +
          ", \"digest\": \"" + flight_digest + "\", \"deterministic\": " +
          std::string(fleet_bench.flight_deterministic ? "true" : "false") +
          "}\n";
  json += "    },\n";
  json += "    \"huge_frame\": {\n";
  json += "      \"memory_mib\": " + Num(huge_frame.memory_mib) + ",\n";
  json += "      \"share\": " + Num(huge_frame.share) + ",\n";
  json += "      \"compaction_migrations\": " +
          Num(huge_frame.compaction_migrations) + ",\n";
  json += "      \"flush_savings\": " + Num(huge_frame.flush_savings) + ",\n";
  json += "      \"no_compaction\": " +
          HugeVariantJson(huge_frame.no_compaction) + ",\n";
  json += "      \"with_compaction\": " +
          HugeVariantJson(huge_frame.with_compaction) + ",\n";
  json += "      \"balloon_probe\": {\"demotions_2m\": " +
          Num(huge_frame.balloon_demotions_2m) + ", \"flush_savings\": " +
          Num(huge_frame.balloon_flush_savings) + "}\n";
  json += "    }\n";
  json += "  }\n";
  json += "}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("%s", json.c_str());
  std::fprintf(stderr, "wrote %s\n", out.c_str());

  // The runner doubles as a correctness gate: a non-deterministic
  // multi-VM run, a pool imbalance, or a broken span-charge closure is a
  // regression, not a slow run.
  const bool attribution_ok =
      !attribution.enabled ||
      (attribution.inflate.found && attribution.inflate.charge_closed &&
       attribution.deflate.found && attribution.deflate.charge_closed);
  const bool spans_ok = !multivm.spans_checked || multivm.spans_deterministic;
  const bool fleet_span_ok =
      !fleet_bench.span_checked || fleet_bench.span_matched;
  const bool telemetry_ok =
      fleet_bench.telemetry_deterministic &&
      fleet_bench.flight_deterministic &&
      (!fleet_bench.result.telemetry.enabled || fleet_bench.flight_dumps > 0);
  // §4.14: compaction must actually evacuate blocks, lower the
  // fragmentation score, and let the shrink reclaim at least as much as
  // the uncompacted run (perf_gate.py holds the share >= 0.8 floor).
  const bool huge_ok =
      huge_frame.with_compaction.compaction_blocks > 0 &&
      huge_frame.with_compaction.frag_after <
          huge_frame.with_compaction.frag_before &&
      huge_frame.with_compaction.reclaimed_mib >=
          huge_frame.no_compaction.reclaimed_mib;
  if (!invariant_ok || !multivm.deterministic || !attribution_ok ||
      !spans_ok || !fleet_bench.deterministic ||
      !fleet_bench.result.slo.spike_satisfied || !fleet_span_ok ||
      !telemetry_ok || !huge_ok) {
    std::fprintf(
        stderr, "FAILED: %s%s%s%s%s%s%s%s%s\n",
        invariant_ok ? "" : "pool invariant violated ",
        multivm.deterministic ? "" : "multivm non-deterministic ",
        attribution_ok ? "" : "span charge closure broken ",
        spans_ok ? "" : "span streams differ across thread counts ",
        fleet_bench.deterministic ? "" : "fleet non-deterministic ",
        fleet_bench.result.slo.spike_satisfied
            ? ""
            : "fleet pressure spike never satisfied ",
        fleet_span_ok ? "" : "fleet span-derived p99 mismatch",
        telemetry_ok ? "" : "telemetry stream/flight recorder broken ",
        huge_ok ? "" : "huge-frame compaction ineffective ");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  return hyperalloc::bench::Main(argc, argv);
}
