// Machine-readable performance runner for the paths this repo's perf
// trajectory tracks: LLFree get/put, the sharded host frame pool, and
// the threaded multi-VM experiment. Emits one JSON document
// (default BENCH_PR3.json; schema checked by scripts/check_bench_json.py)
// so runs are comparable across commits.
//
//   --smoke       small sizes for CI (seconds, not minutes)
//   --out=PATH    output path (default BENCH_PR3.json)
//   --threads=N   host threads for the pool and multi-VM benches
//                 (default 4; the multi-VM determinism check always also
//                 runs single-threaded and compares series)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/multivm_harness.h"
#include "src/llfree/llfree.h"

namespace hyperalloc::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct OpsResult {
  uint64_t ops = 0;
  double wall_ms = 0.0;
  double ops_per_sec = 0.0;

  void Finish(Clock::time_point start) {
    wall_ms = MsSince(start);
    ops_per_sec = wall_ms > 0.0 ? static_cast<double>(ops) / wall_ms * 1e3
                                : 0.0;
  }
};

// Single-threaded LLFree get/put throughput: batches of base-frame and
// huge-frame allocations, freed in order (the allocator hot path every
// guest operation rides on).
OpsResult BenchLLFreeAllocFree(bool smoke) {
  const uint64_t frames = 1ull << (smoke ? 16 : 20);
  llfree::Config config;
  config.cores = 4;
  llfree::SharedState state(frames, config);
  llfree::LLFree alloc(&state);

  const int rounds = smoke ? 200 : 4000;
  constexpr int kBatch = 512;
  std::vector<FrameId> held;
  held.reserve(kBatch);

  OpsResult result;
  const Clock::time_point start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    const unsigned core = static_cast<unsigned>(round % 4);
    const unsigned order = round % 8 == 0 ? kHugeOrder : 0;
    for (int i = 0; i < kBatch; ++i) {
      const Result<FrameId> r = alloc.Get(core, order, AllocType::kMovable);
      if (!r.ok()) {
        break;
      }
      held.push_back(*r);
    }
    for (const FrameId frame : held) {
      alloc.Put(frame, order);
    }
    result.ops += 2 * held.size();
    held.clear();
  }
  result.Finish(start);
  return result;
}

// Multi-threaded TryReserve/Release storm on one pool. Mixed batch sizes
// exercise the shard fast path, the batched global refill/drain, and —
// because the pool is sized near the demand — the cross-shard
// rebalancer. The quiescent invariant (credits == total - used, used ==
// 0) is validated after the threads join.
OpsResult BenchHostPool(unsigned threads, bool smoke, bool* invariant_ok,
                        uint64_t* refills, uint64_t* drains,
                        uint64_t* rebalances) {
  // 32 MiB worth of frames — smaller than even one thread's outstanding
  // window (64 batches averaging 256 frames), so admission runs at the
  // capacity limit where it has to raid other shards' credits (the
  // rebalancer path) and reservations legitimately fail, however the OS
  // schedules the threads.
  hv::HostMemory pool(1ull << 13);
  const int iters = smoke ? 40000 : 800000;

  auto worker = [&pool, iters](uint64_t* ops) {
    std::vector<uint64_t> outstanding;
    outstanding.reserve(64);
    uint64_t local_ops = 0;
    for (int i = 0; i < iters; ++i) {
      const uint64_t batch = static_cast<uint64_t>(i % 7 + 1) * 64;
      if (outstanding.size() < 64 && pool.TryReserve(batch)) {
        outstanding.push_back(batch);
      } else if (!outstanding.empty()) {
        pool.Release(outstanding.back());
        outstanding.pop_back();
      }
      ++local_ops;
    }
    for (const uint64_t batch : outstanding) {
      pool.Release(batch);
    }
    *ops = local_ops;
  };

  std::vector<uint64_t> ops(threads, 0);
  OpsResult result;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool_threads.emplace_back(worker, &ops[t]);
  }
  for (std::thread& t : pool_threads) {
    t.join();
  }
  for (const uint64_t n : ops) {
    result.ops += n;
  }
  result.Finish(start);
  *invariant_ok = pool.used_frames() == 0 &&
                  pool.DebugFreeCredits() == pool.total_frames();
  *refills = pool.refills();
  *drains = pool.drains();
  *rebalances = pool.rebalances();
  return result;
}

MultiVmConfig MultiVmBenchConfig(bool smoke, unsigned threads) {
  MultiVmConfig config;
  config.vms = 8;
  config.threads = threads;
  config.candidate = Candidate::kHyperAlloc;
  config.offset = true;
  config.builds_per_vm = 1;
  config.gap = sim::kMin;
  config.offset_step = 30 * sim::kSec;
  config.vm_bytes = kGiB;
  config.host_slack_bytes = 2 * kGiB;
  config.compile.seed = 100;
  config.compile.workers = 4;
  config.compile.compile_units = smoke ? 12 : 120;
  config.compile.link_jobs = 2;
  config.compile.max_parallel_links = 1;
  config.compile.unit_ws_min = 8 * kMiB;
  config.compile.unit_ws_max = 32 * kMiB;
  config.compile.link_ws_min = 64 * kMiB;
  config.compile.link_ws_max = 96 * kMiB;
  config.compile.cache_read_per_unit = kMiB;
  config.compile.artifact_per_unit = kMiB;
  config.compile.slab_per_job = kMiB;
  return config;
}

struct MultiVmBench {
  int vms = 0;
  unsigned threads = 0;
  double wall_ms_single = 0.0;
  double wall_ms_parallel = 0.0;
  bool deterministic = false;
  double footprint_gib_min = 0.0;
  double peak_gib = 0.0;
};

MultiVmBench BenchMultiVm(bool smoke, unsigned threads) {
  MultiVmConfig config = MultiVmBenchConfig(smoke, 1);
  const MultiVmResult single = RunMultiVm(config);
  config.threads = threads;
  const MultiVmResult parallel = RunMultiVm(config);

  MultiVmBench result;
  result.vms = config.vms;
  result.threads = threads;
  result.wall_ms_single = single.wall_ms;
  result.wall_ms_parallel = parallel.wall_ms;
  result.footprint_gib_min = single.footprint_gib_min;
  result.peak_gib = single.peak_gib;
  result.deterministic =
      single.per_vm_rss.size() == parallel.per_vm_rss.size();
  for (size_t i = 0; result.deterministic && i < single.per_vm_rss.size();
       ++i) {
    result.deterministic =
        SeriesEqual(single.per_vm_rss[i], parallel.per_vm_rss[i]);
  }
  return result;
}

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

std::string Num(uint64_t value) {
  return std::to_string(value);
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_PR3.json";
  unsigned threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    }
  }
  if (threads == 0) {
    threads = 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();

  std::fprintf(stderr, "[1/3] llfree_alloc_free...\n");
  const OpsResult llfree_result = BenchLLFreeAllocFree(smoke);

  std::fprintf(stderr, "[2/3] host_reserve_release (%u threads)...\n",
               threads);
  bool invariant_ok = false;
  uint64_t refills = 0;
  uint64_t drains = 0;
  uint64_t rebalances = 0;
  const OpsResult pool_result = BenchHostPool(
      threads, smoke, &invariant_ok, &refills, &drains, &rebalances);

  std::fprintf(stderr, "[3/3] multivm (8 VMs, 1 vs %u threads)...\n",
               threads);
  const MultiVmBench multivm = BenchMultiVm(smoke, threads);

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"hyperalloc-bench-v1\",\n";
  json += "  \"pr\": \"PR3\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"hardware_concurrency\": " + Num(uint64_t{hw}) + ",\n";
  json += "  \"note\": \"virtual-time results are deterministic; wall-clock"
          " numbers depend on the host (a single-core host serializes the"
          " multi-VM workers, so parallel wall time only drops with >1"
          " cores)\",\n";
  json += "  \"benches\": {\n";
  json += "    \"llfree_alloc_free\": {\n";
  json += "      \"ops\": " + Num(llfree_result.ops) + ",\n";
  json += "      \"wall_ms\": " + Num(llfree_result.wall_ms) + ",\n";
  json += "      \"ops_per_sec\": " + Num(llfree_result.ops_per_sec) + "\n";
  json += "    },\n";
  json += "    \"host_reserve_release\": {\n";
  json += "      \"threads\": " + Num(uint64_t{threads}) + ",\n";
  json += "      \"ops\": " + Num(pool_result.ops) + ",\n";
  json += "      \"wall_ms\": " + Num(pool_result.wall_ms) + ",\n";
  json += "      \"ops_per_sec\": " + Num(pool_result.ops_per_sec) + ",\n";
  json += "      \"invariant_ok\": " +
          std::string(invariant_ok ? "true" : "false") + ",\n";
  json += "      \"refills\": " + Num(refills) + ",\n";
  json += "      \"drains\": " + Num(drains) + ",\n";
  json += "      \"rebalances\": " + Num(rebalances) + "\n";
  json += "    },\n";
  json += "    \"multivm\": {\n";
  json += "      \"vms\": " + Num(uint64_t{static_cast<uint64_t>(
                                  multivm.vms)}) + ",\n";
  json += "      \"threads\": " + Num(uint64_t{multivm.threads}) + ",\n";
  json += "      \"wall_ms_single\": " + Num(multivm.wall_ms_single) + ",\n";
  json += "      \"wall_ms_parallel\": " + Num(multivm.wall_ms_parallel) +
          ",\n";
  json += "      \"deterministic\": " +
          std::string(multivm.deterministic ? "true" : "false") + ",\n";
  json += "      \"footprint_gib_min\": " + Num(multivm.footprint_gib_min) +
          ",\n";
  json += "      \"peak_gib\": " + Num(multivm.peak_gib) + "\n";
  json += "    }\n";
  json += "  }\n";
  json += "}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("%s", json.c_str());
  std::fprintf(stderr, "wrote %s\n", out.c_str());

  // The runner doubles as a correctness gate: a non-deterministic
  // multi-VM run or a pool imbalance is a regression, not a slow run.
  if (!invariant_ok || !multivm.deterministic) {
    std::fprintf(stderr, "FAILED: %s%s\n",
                 invariant_ok ? "" : "pool invariant violated ",
                 multivm.deterministic ? "" : "multivm non-deterministic");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  return hyperalloc::bench::Main(argc, argv);
}
