// E6 — reproduces Fig. 9 (§5.5): the clang compilation with DMA-safe
// automatic reclamation — HyperAlloc vs. virtio-mem, both with a VFIO
// passthrough device whose IOMMU mappings must stay in sync.
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/compile_harness.h"
#include "bench/trace_io.h"

namespace hyperalloc::bench {
namespace {

int Main(int argc, char** argv) {
  int runs = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
    }
  }
  ::mkdir("bench_out", 0755);

  std::printf("Fig. 9: clang compilation with VFIO-based DMA safety "
              "(16 GiB VM, %d run%s)\n\n", runs, runs == 1 ? "" : "s");
  std::printf("%-20s %12s %9s %10s %10s\n", "candidate", "footprint",
              "runtime", "iommu-maps", "iotlb-flsh");
  std::printf("%-20s %12s %9s %10s %10s\n", "", "[GiB*min]", "[min]", "",
              "");

  const Candidate candidates[] = {Candidate::kVmemVfio,
                                  Candidate::kHyperAllocVfio,
                                  Candidate::kVmem,  // non-VFIO reference
                                  Candidate::kHyperAlloc};
  double footprint_of[4] = {0, 0, 0, 0};
  int idx = 0;
  for (const Candidate candidate : candidates) {
    double footprint = 0.0;
    double runtime = 0.0;
    uint64_t iommu_maps = 0;
    uint64_t iotlb = 0;
    for (int run = 0; run < runs; ++run) {
      CompileRunOptions options;
      options.memory_bytes = 16 * kGiB;
      options.compile.seed = 1 + run;
      options.compile.compile_units = 800;
      options.compile.link_jobs = 16;
      options.compile.thp_fraction = 0.6;
      options.compile.cache_read_per_unit = 5 * kMiB;
      options.compile.artifact_per_unit = 8 * kMiB;
      const CompileRunResult result = RunCompile(candidate, options);
      footprint += result.footprint_gib_min / runs;
      runtime += result.runtime_min / runs;
      iommu_maps += result.iommu_maps / static_cast<uint64_t>(runs);
      iotlb += result.iotlb_flushes / static_cast<uint64_t>(runs);
    }
    footprint_of[idx++] = footprint;
    std::printf("%-20s %12.1f %9.2f %10llu %10llu\n", Name(candidate),
                footprint, runtime,
                static_cast<unsigned long long>(iommu_maps),
                static_cast<unsigned long long>(iotlb));
    std::fflush(stdout);
  }

  std::printf("\nvirtio-mem+VFIO footprint overhead vs HyperAlloc+VFIO: "
              "%.1f%%  (paper: 39.8%%)\n",
              (footprint_of[0] / footprint_of[1] - 1.0) * 100.0);
  std::printf("virtio-mem without VFIO is %.1f%% more efficient "
              "(paper: 3.7%%)\n",
              (1.0 - footprint_of[2] / footprint_of[0]) * 100.0);
  std::printf("HyperAlloc VFIO overhead: %.1f%%  (paper: negligible)\n",
              (footprint_of[1] / footprint_of[3] - 1.0) * 100.0);
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
