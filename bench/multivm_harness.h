// Threaded multi-VM harness (§5.6 scaling): N guest VMs, each with its
// own virtual-time simulation, share one sharded host frame pool and run
// a staggered compile schedule on a configurable number of host threads.
//
// Determinism contract: a VM's event stream depends only on its own
// simulation plus the *boolean* outcomes of HostMemory::TryReserve. The
// harness provisions the pool so that admission never fails
// (vms x vm_bytes + slack), which makes every per-VM time series
// byte-identical no matter how many host threads drive the simulations —
// `threads=1` and `threads=8` produce the same CSVs, only the wall clock
// changes. The aggregate footprint is therefore computed by merging the
// per-VM series on the virtual clock (deterministic), not by sampling
// the pool under real-time interleaving (which is not).
#ifndef HYPERALLOC_BENCH_MULTIVM_HARNESS_H_
#define HYPERALLOC_BENCH_MULTIVM_HARNESS_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/candidates.h"
#include "src/metrics/timeseries.h"
#include "src/trace/span.h"
#include "src/workloads/compile.h"
#include "src/workloads/interference_hub.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {

struct MultiVmConfig {
  int vms = 3;
  // Host threads driving the per-VM simulations. 0 = one per VM.
  unsigned threads = 1;
  Candidate candidate = Candidate::kHyperAlloc;
  bool offset = false;  // stagger build starts by `offset_step` per VM
  sim::Time gap = 35 * sim::kMin;
  sim::Time offset_step = 12 * sim::kMin;
  int builds_per_vm = 3;
  uint64_t vm_bytes = 16 * kGiB;
  // Pool beyond vms x vm_bytes; keeps TryReserve always-admitting, which
  // the determinism contract above depends on.
  uint64_t host_slack_bytes = 16 * kGiB;
  sim::Time sample_period = sim::kSec;
  // Per-build template; build i of every VM runs with seed
  // `compile.seed + i` (VMs are identical tenants, as in Fig. 11).
  workloads::CompileConfig compile;
};

struct MultiVmResult {
  // Per-VM RSS in GiB, sampled every `sample_period` of the VM's own
  // virtual clock. Identical across `threads` settings.
  std::vector<metrics::TimeSeries> per_vm_rss;
  // Sum across VMs on the common sample grid (finished VMs extend with
  // their last value — an idle VM still holds its memory).
  metrics::TimeSeries merged;
  double footprint_gib_min = 0.0;  // integral of `merged`
  double peak_gib = 0.0;           // max of `merged` (virtual-time aligned)
  // Real pool high-water mark. Depends on the host-thread interleaving
  // (reported for the pool's sake, not for cross-run comparison).
  uint64_t pool_peak_frames = 0;
  double wall_ms = 0.0;
};

// Sums sample index k across all series; series that ended keep
// contributing their last value.
inline metrics::TimeSeries MergeSum(
    const std::vector<metrics::TimeSeries>& series, sim::Time period) {
  metrics::TimeSeries merged;
  size_t longest = 0;
  for (const metrics::TimeSeries& s : series) {
    longest = std::max(longest, s.points().size());
  }
  for (size_t k = 0; k < longest; ++k) {
    double sum = 0.0;
    for (const metrics::TimeSeries& s : series) {
      if (s.empty()) {
        continue;
      }
      sum += k < s.points().size() ? s.points()[k].value
                                   : s.points().back().value;
    }
    merged.Sample(static_cast<sim::Time>(k) * period, sum);
  }
  return merged;
}

inline bool SeriesEqual(const metrics::TimeSeries& a,
                        const metrics::TimeSeries& b) {
  if (a.points().size() != b.points().size()) {
    return false;
  }
  for (size_t i = 0; i < a.points().size(); ++i) {
    if (a.points()[i].at != b.points()[i].at ||
        a.points()[i].value != b.points()[i].value) {
      return false;
    }
  }
  return true;
}

namespace internal {

// One VM's world: a private simulation plus everything that lives in it.
// Constructed on the caller's thread; Run() is called from exactly one
// worker thread. The only cross-world state is the shared HostMemory.
struct VmWorld {
  MultiVmConfig config;
  int index = 0;
  sim::Simulation sim;
  VmBundle bundle;
  std::unique_ptr<workloads::MemoryPool> pool;
  std::unique_ptr<sim::VcpuSet> vcpus;
  std::unique_ptr<workloads::InterferenceHub> hub;
  std::unique_ptr<workloads::CompileWorkload> compile;
  metrics::TimeSeries rss_gib;
  int builds_done = 0;
  bool finished = false;

  void Init(hv::HostMemory* host, const MultiVmConfig& cfg, int i) {
    config = cfg;
    index = i;
    SetupOptions options;
    options.memory_bytes = cfg.vm_bytes;
    options.balloon.reporting_order = kHugeOrder;  // kernel default o=9
    bundle = MakeVmBundle(&sim, host, cfg.candidate, options,
                          "vm" + std::to_string(i));
    pool = std::make_unique<workloads::MemoryPool>(bundle.vm.get());
    pool->DisableMigrationTracking();
    vcpus = std::make_unique<sim::VcpuSet>(12);
    hub = std::make_unique<workloads::InterferenceHub>(
        vcpus.get(), std::vector<sim::CapacityTimeline*>{});
    bundle.vm->SetInterferenceSink(hub.get());
    if (bundle.deflator != nullptr) {
      bundle.deflator->StartAuto();
    } else {
      bundle.vm->Touch(0, bundle.vm->total_frames());
    }
  }

  void StartBuild(int build) {
    workloads::CompileConfig cc = config.compile;
    cc.seed = config.compile.seed + static_cast<uint64_t>(build);
    compile = std::make_unique<workloads::CompileWorkload>(
        bundle.vm.get(), pool.get(), vcpus.get(), cc);
    compile->Start([this] {
      compile->MakeClean();  // artifacts are rebuilt next time
      if (++builds_done >= config.builds_per_vm) {
        finished = true;
        return;
      }
      sim.After(config.gap, [this] { StartBuild(builds_done); });
    });
  }

  void Run() {
#if HYPERALLOC_TRACE
    // Seed the span context with this VM's id and virtual clock so spans
    // opened while this world runs are tagged and timestamped correctly
    // regardless of which worker thread picked the world up.
    trace::SpanContext vm_context;
    vm_context.vm = static_cast<uint32_t>(index);
    vm_context.clock = &sim;
    trace::ScopedContext scoped_vm_context(vm_context);
#endif
    // 1 Hz RSS sampling on this VM's virtual clock, as the paper samples
    // each QEMU process.
    std::function<void()> tick = [this, &tick] {
      if (finished) {
        return;
      }
      rss_gib.Sample(sim.now(), static_cast<double>(bundle.vm->rss_bytes()) /
                                    static_cast<double>(kGiB));
      sim.After(config.sample_period, tick);
    };
    tick();
    const sim::Time start = sim.now();
    const sim::Time at =
        start + (config.offset ? static_cast<sim::Time>(index) *
                                     config.offset_step
                               : 0);
    sim.At(at, [this] { StartBuild(0); });
    while (!finished) {
      HA_CHECK(sim.Step());
    }
  }
};

}  // namespace internal

inline MultiVmResult RunMultiVm(const MultiVmConfig& config) {
  auto host = std::make_unique<hv::HostMemory>(FramesForBytes(
      static_cast<uint64_t>(config.vms) * config.vm_bytes +
      config.host_slack_bytes));

  // Worlds are built sequentially on this thread (pre-populating
  // candidates charge the pool during construction) and then handed to
  // the workers; std::thread creation/join provides the ordering.
  std::vector<std::unique_ptr<internal::VmWorld>> worlds;
  worlds.reserve(static_cast<size_t>(config.vms));
  for (int i = 0; i < config.vms; ++i) {
    auto world = std::make_unique<internal::VmWorld>();
    world->Init(host.get(), config, i);
    worlds.push_back(std::move(world));
  }

  unsigned threads = config.threads == 0
                         ? static_cast<unsigned>(config.vms)
                         : config.threads;
  threads = std::min(threads, static_cast<unsigned>(config.vms));

  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<int> next{0};
  auto worker = [&worlds, &next] {
    for (int i = next.fetch_add(1, std::memory_order_relaxed);
         i < static_cast<int>(worlds.size());
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      worlds[static_cast<size_t>(i)]->Run();
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    workers.emplace_back(worker);
  }
  worker();
  for (std::thread& t : workers) {
    t.join();
  }
  const auto wall_end = std::chrono::steady_clock::now();

  MultiVmResult result;
  result.per_vm_rss.reserve(worlds.size());
  for (const auto& world : worlds) {
    result.per_vm_rss.push_back(world->rss_gib);
  }
  result.merged = MergeSum(result.per_vm_rss, config.sample_period);
  result.footprint_gib_min = result.merged.IntegralPerMinute();
  result.peak_gib = result.merged.Max();
  result.pool_peak_frames = host->peak_frames();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  return result;
}

// Writes bench_out/multivm_<tag>_vm<i>.csv plus the merged series.
inline void WriteMultiVmCsvs(const MultiVmResult& result,
                             const std::string& tag) {
  for (size_t i = 0; i < result.per_vm_rss.size(); ++i) {
    result.per_vm_rss[i].WriteCsv(std::string("bench_out/multivm_") + tag +
                                      "_vm" + std::to_string(i) + ".csv",
                                  "vm_rss_gib");
  }
  result.merged.WriteCsv(std::string("bench_out/multivm_") + tag + ".csv",
                         "host_used_gib");
}

}  // namespace hyperalloc::bench

#endif  // HYPERALLOC_BENCH_MULTIVM_HARNESS_H_
