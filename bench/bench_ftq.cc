// E3 — reproduces Fig. 6 and the FTQ half of Table 2 (§5.4): CPU work per
// fixed time quantum while the VM is resized, for 1/4/12 threads. Writes
// the aggregated work series to bench_out/ftq_<candidate>_<threads>.csv.
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/candidates.h"
#include "bench/trace_io.h"
#include "src/base/stats.h"
#include "src/fleet/arrival.h"
#include "src/workloads/ftq.h"
#include "src/workloads/interference_hub.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {
namespace {

std::string Slug(const char* name) {
  std::string s(name);
  for (char& c : s) {
    if (c == '(' || c == ')' || c == '+') {
      c = '_';
    }
  }
  return s;
}

double RunOne(Candidate candidate, unsigned threads, bool write_csv) {
  Setup setup = MakeSetup(candidate);
  workloads::MemoryPool pool(setup.vm.get());

  workloads::FtqConfig config;
  config.threads = threads;
  config.vcpus = 12;
  config.samples = 1096;  // ~140 s, as in the paper

  workloads::FtqWorkload ftq(setup.sim.get(), config);
  workloads::InterferenceHub hub(&ftq.vcpus(), {}, threads,
                                 /*ipi_sensitivity=*/0.6);
  setup.vm->SetInterferenceSink(&hub);

  PrepareVm(&setup, &pool);
  const sim::Time start = setup.sim->now();
  fleet::ApplyResizeSchedule(
      setup.sim.get(), setup.deflator.get(),
      fleet::StepResizeTrace(setup.vm->config().memory_bytes), start);

  bool done = false;
  ftq.Start([&] { done = true; });
  while (!done) {
    HA_CHECK(setup.sim->Step());
  }

  if (write_csv) {
    const std::string path = "bench_out/ftq_" + Slug(Name(candidate)) + "_" +
                             std::to_string(threads) + ".csv";
    metrics::TimeSeries shifted;
    for (const auto& p : ftq.samples().points()) {
      shifted.Sample(p.at - start, p.value);
    }
    shifted.WriteCsv(path, "work_units");
  }

  std::vector<double> values;
  for (const auto& p : ftq.samples().points()) {
    values.push_back(p.value);
  }
  return Percentile(values, 0.01);
}

int Main(int argc, char** argv) {
  bool write_csv = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-csv") == 0) {
      write_csv = false;
    }
  }
  if (write_csv) {
    ::mkdir("bench_out", 0755);
  }

  const Candidate candidates[] = {
      Candidate::kBaselineBuddy, Candidate::kBalloon,
      Candidate::kBalloonHuge,   Candidate::kVmem,
      Candidate::kVmemVfio,      Candidate::kHyperAlloc,
      Candidate::kHyperAllocVfio};
  const unsigned thread_counts[] = {1, 4, 12};

  std::printf("Table 2 (FTQ): 1st percentile work per quantum [1e6] during "
              "resize (shrink @20 s, grow @90 s)\n\n");
  std::printf("%-22s %8s %8s %8s\n", "candidate", "1", "4", "12");
  for (const Candidate candidate : candidates) {
    std::printf("%-22s", Name(candidate));
    for (const unsigned threads : thread_counts) {
      const double p1 = RunOne(candidate, threads, write_csv);
      std::printf(" %8.2f", p1 / 1e6);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  if (write_csv) {
    std::printf("\nWork series written to bench_out/ftq_*.csv (Fig. 6)\n");
  }
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
