// E8 — reproduces Fig. 11 (§5.6): N 16 GiB VMs on one host (default 3,
// as in the paper), each compiling clang three times with long idle gaps,
// with (a) simultaneous and (b) offset peak memory consumption. Compares
// no reclamation, virtio-balloon free-page reporting, and HyperAlloc on
// accumulated footprint and peak host memory demand.
//
// Each VM runs in its own virtual-time simulation against the shared
// sharded host pool, so the experiment parallelizes across host threads
// (--threads=N) without changing any result series — see
// src/fleet/fleet.h for the determinism contract. This bench is a thin
// client of the fleet engine's run-to-completion mode.
//
// Time is compressed relative to the paper (builds take ~10 min here vs
// ~35 min on the authors' testbed); gaps and offsets are scaled to keep
// the same proportions.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/fleet_bench.h"
#include "bench/trace_io.h"

namespace hyperalloc::bench {
namespace {

workloads::CompileConfig BuildConfig() {
  workloads::CompileConfig config;
  config.seed = 100;
  config.compile_units = 800;
  config.link_jobs = 16;
  config.thp_fraction = 0.6;
  config.cache_read_per_unit = 5 * kMiB;
  config.artifact_per_unit = 8 * kMiB;
  return config;
}

int Main(int argc, char** argv) {
  int vms = 3;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--vms=", 6) == 0) {
      vms = std::atoi(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    }
  }

  ::mkdir("bench_out", 0755);
  std::printf("Fig. 11: %d 16 GiB VMs compiling clang 3x each "
              "(%d GiB provisioned, %u host thread%s)\n\n",
              vms, vms * 16, threads == 0 ? static_cast<unsigned>(vms)
                                          : threads,
              threads == 1 ? "" : "s");

  struct Row {
    Candidate candidate;
    const char* label;
    const char* tag;
  };
  const Row rows[] = {
      {Candidate::kBaselineBuddy, "no reclamation", "baseline"},
      {Candidate::kBalloon, "virtio-balloon", "balloon"},
      {Candidate::kHyperAlloc, "HyperAlloc", "hyperalloc"},
  };

  for (const bool offset : {false, true}) {
    std::printf("%s peaks (Fig. 11%s):\n",
                offset ? "offset" : "simultaneous", offset ? "b" : "a");
    std::printf("  %-20s %14s %10s %10s\n", "candidate", "footprint",
                "peak", "wall");
    std::printf("  %-20s %14s %10s %10s\n", "", "[GiB*min]", "[GiB]",
                "[ms]");
    for (const Row& row : rows) {
      CompileFleetOptions options;
      options.vms = vms;
      options.threads = threads;
      options.candidate = row.candidate;
      options.offset = offset;
      options.compile = BuildConfig();
      const fleet::FleetResult result = RunCompileFleet(options);
      WriteFleetCsvs(result, std::string(offset ? "offset_" : "aligned_") +
                                 row.tag);
      std::printf("  %-20s %14.0f %10.2f %10.0f\n", row.label,
                  result.footprint_gib_min, result.peak_gib, result.wall_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Series written to bench_out/multivm_*.csv (per VM and "
              "merged)\n");
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
