// E8 — reproduces Fig. 11 (§5.6): three 16 GiB VMs on one host, each
// compiling clang three times with long idle gaps, with (a) simultaneous
// and (b) offset peak memory consumption. Compares no reclamation,
// virtio-balloon free-page reporting, and HyperAlloc on accumulated
// footprint and peak host memory demand.
//
// Time is compressed relative to the paper (builds take ~10 min here vs
// ~35 min on the authors' testbed); gaps and offsets are scaled to keep
// the same proportions.
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/candidates.h"
#include "bench/trace_io.h"
#include "src/metrics/timeseries.h"
#include "src/workloads/compile.h"
#include "src/workloads/interference_hub.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {
namespace {

constexpr int kVms = 3;
constexpr int kBuildsPerVm = 3;
constexpr sim::Time kGap = 35 * sim::kMin;     // paper: 2 h between builds
constexpr sim::Time kOffset = 12 * sim::kMin;  // paper: 40 min offset

workloads::CompileConfig BuildConfig(uint64_t seed) {
  workloads::CompileConfig config;
  config.seed = seed;
  config.compile_units = 800;
  config.link_jobs = 16;
  config.thp_fraction = 0.6;
  config.cache_read_per_unit = 5 * kMiB;
  config.artifact_per_unit = 8 * kMiB;
  return config;
}

// One VM's state: runs `kBuildsPerVm` builds separated by kGap.
struct VmRunner {
  VmBundle bundle;
  std::unique_ptr<workloads::MemoryPool> pool;
  std::unique_ptr<sim::VcpuSet> vcpus;
  std::unique_ptr<workloads::InterferenceHub> hub;
  std::unique_ptr<workloads::CompileWorkload> compile;
  sim::Simulation* sim = nullptr;
  int builds_done = 0;
  bool finished = false;

  void StartBuild(int index) {
    compile = std::make_unique<workloads::CompileWorkload>(
        bundle.vm.get(), pool.get(), vcpus.get(),
        BuildConfig(100 + static_cast<uint64_t>(index)));
    compile->Start([this] {
      // `make clean` happens between builds (artifacts are rebuilt).
      compile->MakeClean();
      if (++builds_done >= kBuildsPerVm) {
        finished = true;
        return;
      }
      sim->After(kGap, [this] { StartBuild(builds_done); });
    });
  }
};

struct ExperimentResult {
  double footprint_gib_min;
  double peak_gib;
  metrics::TimeSeries host_used;
};

ExperimentResult RunExperiment(Candidate candidate, bool offset,
                               const char* csv_tag) {
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(64 * kGiB));

  std::vector<std::unique_ptr<VmRunner>> runners;
  for (int i = 0; i < kVms; ++i) {
    auto runner = std::make_unique<VmRunner>();
    SetupOptions options;
    options.memory_bytes = 16 * kGiB;
    // Kernel-default free-page reporting (o=9, d=2 s, c=32).
    options.balloon.reporting_order = kHugeOrder;
    runner->bundle = MakeVmBundle(&sim, &host, candidate, options,
                                  "vm" + std::to_string(i));
    runner->pool =
        std::make_unique<workloads::MemoryPool>(runner->bundle.vm.get());
    runner->pool->DisableMigrationTracking();
    runner->vcpus = std::make_unique<sim::VcpuSet>(12);
    runner->hub = std::make_unique<workloads::InterferenceHub>(
        runner->vcpus.get(), std::vector<sim::CapacityTimeline*>{});
    runner->bundle.vm->SetInterferenceSink(runner->hub.get());
    runner->sim = &sim;
    if (runner->bundle.deflator != nullptr) {
      runner->bundle.deflator->StartAuto();
    } else {
      runner->bundle.vm->Touch(0, runner->bundle.vm->total_frames());
    }
    runners.push_back(std::move(runner));
  }

  ExperimentResult result{};
  bool sampling = true;
  std::function<void()> tick = [&] {
    if (!sampling) {
      return;
    }
    result.host_used.Sample(sim.now(),
                            static_cast<double>(host.used_bytes()) /
                                static_cast<double>(kGiB));
    sim.After(sim::kSec, tick);
  };
  tick();

  const sim::Time start = sim.now();  // VM setup consumed virtual time
  for (int i = 0; i < kVms; ++i) {
    const sim::Time at =
        start + (offset ? static_cast<sim::Time>(i) * kOffset : 0);
    VmRunner* runner = runners[i].get();
    sim.At(at, [runner] { runner->StartBuild(0); });
  }

  auto all_done = [&] {
    for (const auto& runner : runners) {
      if (!runner->finished) {
        return false;
      }
    }
    return true;
  };
  while (!all_done()) {
    HA_CHECK(sim.Step());
  }
  sampling = false;

  result.footprint_gib_min = result.host_used.IntegralPerMinute();
  result.peak_gib = static_cast<double>(host.peak_frames()) *
                    static_cast<double>(kFrameSize) /
                    static_cast<double>(kGiB);
  result.host_used.WriteCsv(std::string("bench_out/multivm_") + csv_tag +
                                ".csv",
                            "host_used_gib");
  return result;
}

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  ::mkdir("bench_out", 0755);
  std::printf("Fig. 11: three 16 GiB VMs compiling clang 3x each "
              "(48 GiB provisioned)\n\n");

  struct Row {
    Candidate candidate;
    const char* label;
  };
  const Row rows[] = {
      {Candidate::kBaselineBuddy, "no reclamation"},
      {Candidate::kBalloon, "virtio-balloon"},
      {Candidate::kHyperAlloc, "HyperAlloc"},
  };

  for (const bool offset : {false, true}) {
    std::printf("%s peaks (Fig. 11%s):\n",
                offset ? "offset" : "simultaneous", offset ? "b" : "a");
    std::printf("  %-20s %14s %10s\n", "candidate", "footprint", "peak");
    std::printf("  %-20s %14s %10s\n", "", "[GiB*min]", "[GiB]");
    for (const Row& row : rows) {
      const std::string tag = std::string(offset ? "offset_" : "aligned_") +
                              (row.candidate == Candidate::kBaselineBuddy
                                   ? "baseline"
                                   : row.candidate == Candidate::kBalloon
                                         ? "balloon"
                                         : "hyperalloc");
      const ExperimentResult result =
          RunExperiment(row.candidate, offset, tag.c_str());
      std::printf("  %-20s %14.0f %10.2f\n", row.label,
                  result.footprint_gib_min, result.peak_gib);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Series written to bench_out/multivm_*.csv\n");
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
