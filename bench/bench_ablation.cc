// E11 — ablation of the paper's §4.2 design changes to LLFree:
//   (1) per-type vs. per-core tree reservations
//   (2) tree size 8 areas (16 MiB) vs. the original 32 areas (64 MiB)
//
// A mixed-lifetime churn (short-lived movable user memory interleaved
// with long-lived unmovable kernel allocations) runs against each
// configuration; afterwards we measure how many huge frames remain
// allocatable — the availability that huge-granular reclamation depends
// on ("the per-type reservations lead to less fragmentation in the long
// run"). This isolates the long-horizon fragmentation mechanism whose
// compressed-workload under-reproduction DESIGN.md §4.5 documents.
#include <cstdio>
#include <vector>

#include "bench/trace_io.h"
#include "src/base/rng.h"
#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/hv/host_memory.h"
#include "src/llfree/llfree.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::llfree {
namespace {

constexpr uint64_t kFrames = 1ull << 20;  // 4 GiB
constexpr int kSteps = 400000;

struct AblationResult {
  uint64_t free_huge;
  uint64_t used_areas;
  uint64_t free_frames;
};

AblationResult RunChurn(Config config, uint64_t seed) {
  config.cores = 4;
  SharedState state(kFrames, config);
  LLFree alloc(&state);
  Rng rng(seed);

  std::vector<std::pair<FrameId, unsigned>> movable;   // short-lived
  std::vector<FrameId> unmovable;                      // long-lived

  // Phase 1 — fill to ~90 % with interleaved user (movable) and kernel
  // (unmovable) allocations, the way memory fills during a workload ramp.
  while (alloc.FreeFrames() > kFrames / 10) {
    const unsigned core = static_cast<unsigned>(rng.Below(4));
    if (rng.Chance(0.92)) {
      static constexpr unsigned kOrders[] = {0, 0, 0, 1, 2, 3};
      const unsigned order = kOrders[rng.Below(6)];
      const Result<FrameId> r = alloc.Get(core, order, AllocType::kMovable);
      if (r.ok()) {
        movable.emplace_back(*r, order);
      }
    } else {
      const Result<FrameId> r = alloc.Get(core, 0, AllocType::kUnmovable);
      if (r.ok()) {
        unmovable.push_back(*r);
      }
    }
  }

  // Phase 2 — churn under pressure: free and re-allocate user memory in
  // random order, occasionally adding more kernel state.
  for (int step = 0; step < kSteps; ++step) {
    const unsigned core = static_cast<unsigned>(rng.Below(4));
    const uint64_t dice = rng.Below(100);
    if (dice < 47) {
      if (!movable.empty()) {
        const size_t idx = rng.Below(movable.size());
        alloc.Put(movable[idx].first, movable[idx].second);
        movable[idx] = movable.back();
        movable.pop_back();
      }
    } else if (dice < 95) {
      static constexpr unsigned kOrders[] = {0, 0, 0, 1, 2, 3};
      const unsigned order = kOrders[rng.Below(6)];
      const Result<FrameId> r = alloc.Get(core, order, AllocType::kMovable);
      if (r.ok()) {
        movable.emplace_back(*r, order);
      }
    } else {
      const Result<FrameId> r = alloc.Get(core, 0, AllocType::kUnmovable);
      if (r.ok()) {
        unmovable.push_back(*r);
      }
    }
  }

  // Phase 3 — the workload exits: all user memory is freed; kernel state
  // stays. What auto-reclamation can now take depends entirely on how
  // scattered the unmovable allocations ended up.
  for (const auto& [frame, order] : movable) {
    alloc.Put(frame, order);
  }
  alloc.DrainReservations();

  AblationResult result;
  result.free_huge = alloc.FreeHugeFrames();
  result.used_areas = alloc.UsedHugeAreas();
  result.free_frames = alloc.FreeFrames();
  return result;
}

int Main() {
  std::printf("Ablation (paper 4.2): reservation policy and tree size vs "
              "huge-frame availability\n");
  std::printf("4 GiB LLFree instance, %d mixed-lifetime operations, "
              "short-lived memory freed at the end\n\n", kSteps);
  std::printf("%-38s %10s %12s %12s %9s\n", "configuration", "free-huge",
              "used-areas", "free-frames", "reclaim%");

  struct Variant {
    const char* label;
    Config::ReservationMode mode;
    unsigned areas_per_tree;
  };
  const Variant variants[] = {
      {"per-type trees, 8 areas (HyperAlloc)",
       Config::ReservationMode::kPerType, 8},
      {"per-type trees, 32 areas", Config::ReservationMode::kPerType, 32},
      {"per-core trees, 8 areas", Config::ReservationMode::kPerCore, 8},
      {"per-core trees, 32 areas (orig LLFree)",
       Config::ReservationMode::kPerCore, 32},
  };

  for (const Variant& variant : variants) {
    Config config;
    config.mode = variant.mode;
    config.areas_per_tree = variant.areas_per_tree;
    // Average over seeds for stability.
    AblationResult total{0, 0, 0};
    constexpr int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const AblationResult r = RunChurn(config, 1000 + seed);
      total.free_huge += r.free_huge;
      total.used_areas += r.used_areas;
      total.free_frames += r.free_frames;
    }
    const double free_huge = static_cast<double>(total.free_huge) / kSeeds;
    const double used = static_cast<double>(total.used_areas) / kSeeds;
    const double free_frames =
        static_cast<double>(total.free_frames) / kSeeds;
    // Fraction of the free memory that huge-granular reclamation can take.
    const double reclaimable =
        free_huge * kFramesPerHuge / free_frames * 100.0;
    std::printf("%-38s %10.0f %12.0f %12.0f %8.1f%%\n", variant.label,
                free_huge, used, free_frames, reclaimable);
  }
  std::printf("\nHigher free-huge / lower used-areas = less huge-frame "
              "fragmentation.\n");

  // ------------------------------------------------------------------
  // Second ablation (5.3): QEMU-level monitor vs in-KVM integration.
  // The paper: "this overhead would probably disappear if we integrated
  // HyperAlloc into KVM itself, removing the extra context switch."
  // ------------------------------------------------------------------
  std::printf("\nInstall-path ablation: user-space monitor (QEMU) vs "
              "in-KVM integration\n");
  std::printf("%-28s %16s %16s\n", "integration", "return+install",
              "reclaim(touched)");
  for (const bool in_kernel : {false, true}) {
    sim::Simulation sim;
    hv::HostMemory host(FramesForBytes(16 * kGiB));
    guest::GuestConfig gc;
    gc.memory_bytes = 4 * kGiB;
    gc.vcpus = 4;
    gc.dma32_bytes = 0;
    gc.allocator = guest::AllocatorKind::kLLFree;
    guest::GuestVm vm(&sim, &host, gc);
    core::HyperAllocConfig hc;
    hc.in_kernel = in_kernel;
    core::HyperAllocMonitor monitor(&vm, hc);
    workloads::MemoryPool pool(&vm);
    pool.DisableMigrationTracking();

    auto set_limit = [&](uint64_t bytes) {
      bool done = false;
      monitor.Request({.target_bytes = bytes, .done = [&] { done = true; }});
      while (!done) {
        sim.Step();
      }
      return sim.now();
    };

    // Touch everything, free, shrink, then measure return+install and a
    // touched reclaim (the inflate methodology at 4 GiB scale).
    const uint64_t warm = pool.AllocRegion(3 * kGiB, 0.9, 0);
    pool.FreeRegion(warm, 0);
    vm.PurgeAllocatorCaches();
    set_limit(kGiB);
    sim::Time t0 = sim.now();
    set_limit(4 * kGiB);
    const uint64_t install = pool.AllocRegion(3 * kGiB, 0.9, 0);
    const double ri_gibps = 3.0 / (static_cast<double>(sim.now() - t0) / 1e9);
    pool.FreeRegion(install, 0);
    vm.PurgeAllocatorCaches();
    t0 = sim.now();
    set_limit(kGiB);
    const double rc_gibps = 3.0 / (static_cast<double>(sim.now() - t0) / 1e9);
    std::printf("%-28s %11.2f GiB/s %11.2f GiB/s\n",
                in_kernel ? "in-KVM" : "QEMU monitor (paper)", ri_gibps,
                rc_gibps);
  }
  std::printf("\nThe install entry costs differ by ~6%% (2750 vs 2600 ns "
              "per huge frame), but population\ndominates the combined "
              "path, and run-aggregated madvise already amortizes the\n"
              "per-syscall cost — the QEMU-level monitor recovers almost "
              "all of the in-KVM advantage,\nconfirming the paper's "
              "\"this overhead would probably disappear\" expectation "
              "is small to begin with.\n");
  return 0;
}

}  // namespace
}  // namespace hyperalloc::llfree

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::llfree::Main();
}
