// E12 — real wall-clock micro-benchmarks (google-benchmark) of the LLFree
// data-structure operations that underlie the paper's §5.3 rates: base and
// huge allocation, free, the bilateral hard-reclaim/return transitions,
// and the install-path CAS. These run on real hardware (no virtual time).
#include <benchmark/benchmark.h>

#include <vector>

#include "src/llfree/llfree.h"

namespace hyperalloc::llfree {
namespace {

constexpr uint64_t kFrames = 1ull << 19;  // 2 GiB worth of frames

std::unique_ptr<SharedState> FreshState(unsigned cores) {
  Config config;
  config.mode = Config::ReservationMode::kPerCore;
  config.cores = cores;
  return std::make_unique<SharedState>(kFrames, config);
}

void BM_GetPutBase(benchmark::State& state) {
  static std::unique_ptr<SharedState> shared;
  static std::unique_ptr<LLFree> alloc;
  if (state.thread_index() == 0) {
    shared = FreshState(static_cast<unsigned>(state.threads()));
    alloc = std::make_unique<LLFree>(shared.get());
  }
  const unsigned core = static_cast<unsigned>(state.thread_index());
  std::vector<FrameId> local;
  local.reserve(64);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      const Result<FrameId> r = alloc->Get(core, 0, AllocType::kMovable);
      benchmark::DoNotOptimize(r.ok());
      if (r.ok()) {
        local.push_back(*r);
      }
    }
    for (const FrameId f : local) {
      alloc->Put(f, 0);
    }
    local.clear();
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_GetPutBase)->ThreadRange(1, 4)->UseRealTime();

void BM_GetPutHuge(benchmark::State& state) {
  static std::unique_ptr<SharedState> shared;
  static std::unique_ptr<LLFree> alloc;
  if (state.thread_index() == 0) {
    shared = FreshState(static_cast<unsigned>(state.threads()));
    alloc = std::make_unique<LLFree>(shared.get());
  }
  const unsigned core = static_cast<unsigned>(state.thread_index());
  for (auto _ : state) {
    const Result<FrameId> r = alloc->Get(core, kHugeOrder, AllocType::kHuge);
    benchmark::DoNotOptimize(r.ok());
    if (r.ok()) {
      alloc->Put(*r, kHugeOrder);
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_GetPutHuge)->ThreadRange(1, 4)->UseRealTime();

// The bilateral hypervisor transitions: hard reclaim + return. The paper
// measures 388 ns (reclaim untouched) and 229 ns (return) per huge frame
// including QEMU bookkeeping; the raw CAS transactions here are the lower
// bound.
void BM_ReclaimReturn(benchmark::State& state) {
  SharedState shared(kFrames, Config{});
  LLFree monitor(&shared);
  HugeId hint = 0;
  for (auto _ : state) {
    const std::optional<HugeId> h = monitor.ReclaimHuge(hint, /*hard=*/true);
    benchmark::DoNotOptimize(h.has_value());
    if (h.has_value()) {
      hint = *h + 1;
      monitor.MarkReturned(*h);
      monitor.ClearEvicted(*h);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReclaimReturn);

void BM_SoftReclaimInstall(benchmark::State& state) {
  SharedState shared(kFrames, Config{});
  LLFree monitor(&shared);
  HugeId h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.TrySoftReclaim(h));
    benchmark::DoNotOptimize(monitor.ClearEvicted(h));
    h = (h + 1) % monitor.num_areas();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftReclaimInstall);

void BM_EvictedAllocationPath(benchmark::State& state) {
  // Allocation from an evicted area (triggering the install handler) vs
  // the plain path — the guest-visible cost of install-on-allocate.
  SharedState shared(kFrames, Config{});
  LLFree guest(&shared);
  LLFree monitor(&shared);
  guest.SetInstallHandler([&](HugeId huge) { monitor.ClearEvicted(huge); });
  for (auto _ : state) {
    state.PauseTiming();
    for (HugeId a = 0; a < guest.num_areas(); ++a) {
      monitor.TrySoftReclaim(a);
    }
    state.ResumeTiming();
    const Result<FrameId> r = guest.Get(0, kHugeOrder, AllocType::kHuge);
    benchmark::DoNotOptimize(r.ok());
    if (r.ok()) {
      guest.Put(*r, kHugeOrder);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvictedAllocationPath);

}  // namespace
}  // namespace hyperalloc::llfree

BENCHMARK_MAIN();
