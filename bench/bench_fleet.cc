// Fleet-scale policy scenarios: N small VMs (default 128, up to 1024+)
// on an overcommitted host, demand driven by a deterministic arrival
// process, limits driven by a pluggable resize policy under admission
// control. Verifies the engine determinism contract by running the same
// scenario with 1 and N worker threads and comparing fleet digests, and
// compares the stock policies on the same traffic.
//
// Emits the `hyperalloc-bench-fleet-v1` JSON document with --out=FILE
// (the same object bench_runner embeds under benches.fleet).
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/fleet_bench.h"
#include "bench/trace_io.h"
#include "src/telemetry/export.h"

namespace hyperalloc::bench {
namespace {

FleetScenarioOptions BaseOptions(uint64_t vms, unsigned threads) {
  FleetScenarioOptions options;
  options.vms = vms;
  options.threads = threads;
  return options;
}

int Main(int argc, char** argv) {
  uint64_t vms = 128;
  unsigned threads = 4;
  std::string policy = "proportional-share";
  std::string arrival = "bursty";
  std::string out;
  std::string fault_plan_spec;
  uint64_t fault_seed = 42;
  std::string telemetry_out;
  bool no_telemetry = false;
  bool smoke = false;
  bool huge = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--vms=", 6) == 0) {
      vms = static_cast<uint64_t>(std::atoll(argv[i] + 6));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      policy = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--arrival=", 10) == 0) {
      arrival = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--fault-plan=", 13) == 0) {
      fault_plan_spec = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      fault_seed = static_cast<uint64_t>(std::atoll(argv[i] + 13));
    } else if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0) {
      telemetry_out = argv[i] + 16;
    } else if (std::strcmp(argv[i], "--no-telemetry") == 0) {
      no_telemetry = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--huge") == 0) {
      huge = true;
    }
  }
  if (smoke) {
    vms = std::min<uint64_t>(vms, 128);
  }

  FleetScenarioOptions options = BaseOptions(vms, threads);
  options.policy = policy;
  options.huge = huge;
  options.telemetry.enabled = !no_telemetry;
  if (!fault_plan_spec.empty()) {
    options.fault_plan.seed = fault_seed;
    std::string error;
    if (!fault::Plan::Parse(fault_plan_spec, &options.fault_plan, &error)) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", error.c_str());
      return 1;
    }
  }
  if (arrival == "bursty") {
    options.arrival.kind = fleet::ArrivalKind::kBursty;
  } else if (arrival == "diurnal") {
    options.arrival.kind = fleet::ArrivalKind::kDiurnal;
  } else if (arrival == "heavy-tailed") {
    options.arrival.kind = fleet::ArrivalKind::kHeavyTailed;
  } else {
    std::fprintf(stderr, "unknown arrival '%s'\n", arrival.c_str());
    return 1;
  }

  std::printf("fleet: %llu x %llu MiB VMs, %.2gx overcommit, %s arrivals, "
              "policy %s, horizon %llu s\n\n",
              static_cast<unsigned long long>(options.vms),
              static_cast<unsigned long long>(options.vm_bytes / kMiB),
              options.overcommit, arrival.c_str(), policy.c_str(),
              static_cast<unsigned long long>(options.horizon / sim::kSec));

  // Determinism: the same scenario with 1 worker thread and with N must
  // produce the same per-VM outcome digests.
  FleetScenarioOptions single = options;
  single.threads = 1;
  const fleet::FleetResult reference = RunFleetScenario(single);
  const fleet::FleetResult result = RunFleetScenario(options);
  const bool deterministic =
      reference.fleet_digest == result.fleet_digest &&
      reference.vm_digests == result.vm_digests &&
      reference.telemetry.telemetry_digest ==
          result.telemetry.telemetry_digest &&
      reference.telemetry.flight_digest == result.telemetry.flight_digest;
  std::printf("determinism: 1 thread vs %u threads -> %s "
              "(digest %016llx, telemetry %016llx)\n\n",
              threads, deterministic ? "IDENTICAL" : "DIVERGED",
              static_cast<unsigned long long>(result.fleet_digest),
              static_cast<unsigned long long>(
                  result.telemetry.telemetry_digest));
  if (result.telemetry.enabled) {
    std::printf("telemetry: %llu epochs, %llu alerts, %llu flight dumps\n\n",
                static_cast<unsigned long long>(result.telemetry.epochs),
                static_cast<unsigned long long>(result.telemetry.alerts),
                static_cast<unsigned long long>(
                    result.telemetry.flight_dumps));
  }
  if (huge) {
    const hv::HugeReclaimStats& hr = result.huge_reclaim;
    std::printf("huge reclaim (fleet): untouched %llu, 2m %llu, 4k %llu "
                "-> share %.3f\n\n",
                static_cast<unsigned long long>(hr.untouched),
                static_cast<unsigned long long>(hr.via_2m),
                static_cast<unsigned long long>(hr.via_4k), hr.Share());
  }

  // Policy comparison on identical traffic.
  std::printf("  %-20s %8s %10s %10s %8s %8s %8s %12s\n", "policy",
              "resizes", "p50[ms]", "p99[ms]", "granted", "clipped",
              "rejected", "t2r[ms]");
  for (const char* name :
       {"proportional-share", "pressure-pid", "market"}) {
    FleetScenarioOptions po = options;
    po.policy = name;
    const fleet::FleetResult pr =
        std::string(name) == policy ? result : RunFleetScenario(po);
    std::printf("  %-20s %8llu %10.2f %10.2f %8llu %8llu %8llu %12.0f%s\n",
                name, static_cast<unsigned long long>(pr.slo.resizes),
                pr.slo.p50_resize_ms, pr.slo.p99_resize_ms,
                static_cast<unsigned long long>(pr.admission.granted),
                static_cast<unsigned long long>(pr.admission.clipped),
                static_cast<unsigned long long>(pr.admission.rejected),
                pr.slo.time_to_reclaim_ms,
                pr.slo.spike_satisfied ? "" : " (unsatisfied)");
    std::fflush(stdout);
  }
  std::printf("\n");

  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"hyperalloc-bench-fleet-v1\",\n"
                    "  \"fleet\": %s\n}\n",
                 FleetJson(options, result, deterministic, 4).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  if (!telemetry_out.empty()) {
    const unsigned shards = options.telemetry.shards != 0
                                ? options.telemetry.shards
                                : hv::HostMemory::kDefaultShards;
    telemetry::WriteTelemetryArtifacts(telemetry_out, result.telemetry,
                                       shards);
    std::printf("wrote %s.{fleet.csv,vms.csv,prom,perfetto.json} "
                "+ %llu flight dump(s)\n",
                telemetry_out.c_str(),
                static_cast<unsigned long long>(
                    result.telemetry.flight_dumps));
  }
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
