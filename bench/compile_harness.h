// Shared harness for the clang-compilation elasticity experiments
// (Figs. 7, 8, 9, 11): runs the compile workload on a candidate's VM with
// automatic reclamation, sampling the memory-usage metrics of Fig. 8 at
// 1 Hz.
#ifndef HYPERALLOC_BENCH_COMPILE_HARNESS_H_
#define HYPERALLOC_BENCH_COMPILE_HARNESS_H_

#include <memory>
#include <string>

#include "bench/candidates.h"
#include "src/metrics/timeseries.h"
#include "src/workloads/compile.h"
#include "src/workloads/interference_hub.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {

struct CompileRunResult {
  double footprint_gib_min = 0.0;  // integral of RSS over the build
  double runtime_min = 0.0;
  double peak_rss_gib = 0.0;
  hv::CpuAccounting cpu;           // reclamation CPU time
  sim::Time fault_time = 0;        // EPT fault/populate time ("system")
  uint64_t ept_faults = 0;
  uint64_t oom_events = 0;
  uint64_t iommu_maps = 0;
  uint64_t iotlb_flushes = 0;
  // 1 Hz series (Fig. 8): assigned VM memory, used huge pages, allocated
  // small pages, page cache. Times relative to workload start.
  metrics::TimeSeries rss, huge, small, cached;
};

struct CompileRunOptions {
  uint64_t memory_bytes = 16 * kGiB;
  workloads::CompileConfig compile;
  // Extend the run as in Fig. 8's in-depth analysis: idle, `make clean`,
  // idle, drop caches.
  bool detail_tail = false;
  sim::Time tail_idle = 200 * sim::kSec;
  bool auto_reclaim = true;
  SetupOptions setup_options;
};

inline CompileRunResult RunCompile(Candidate candidate,
                                   const CompileRunOptions& options) {
  SetupOptions so = options.setup_options;
  so.memory_bytes = options.memory_bytes;
  Setup setup = MakeSetup(candidate, so);
  guest::GuestVm& vm = *setup.vm;

  workloads::MemoryPool pool(&vm);
  const bool can_migrate = candidate == Candidate::kVmem ||
                           candidate == Candidate::kVmemVfio;
  if (!can_migrate) {
    pool.DisableMigrationTracking();
  }

  sim::VcpuSet vcpus(vm.config().vcpus);
  workloads::InterferenceHub hub(&vcpus, {});
  vm.SetInterferenceSink(&hub);

  if (!HasDeflator(candidate)) {
    // The static baselines keep their full memory resident for the whole
    // run ("statically use 16 GiB", §5.5).
    vm.Touch(0, vm.total_frames());
  } else if (options.auto_reclaim) {
    setup.deflator->StartAuto();
  }

  CompileRunResult result;
  const sim::Time start = setup.sim->now();
  auto sample_all = [&result, &vm, start](sim::Time now) {
    const double t = static_cast<double>(now - start);
    (void)t;
    result.rss.Sample(now - start,
                      static_cast<double>(vm.rss_bytes()) /
                          static_cast<double>(kGiB));
    result.huge.Sample(now - start,
                       static_cast<double>(vm.UsedHugeBytes()) /
                           static_cast<double>(kGiB));
    result.small.Sample(now - start,
                        static_cast<double>(vm.AllocatedFrames()) *
                            static_cast<double>(kFrameSize) /
                            static_cast<double>(kGiB));
    result.cached.Sample(now - start,
                         static_cast<double>(vm.cache_bytes()) /
                             static_cast<double>(kGiB));
  };

  // 1 Hz sampler (self-rescheduling until stopped).
  bool sampling = true;
  std::function<void()> tick = [&] {
    if (!sampling) {
      return;
    }
    sample_all(setup.sim->now());
    setup.sim->After(sim::kSec, tick);
  };
  tick();

  workloads::CompileWorkload compile(&vm, &pool, &vcpus, options.compile);
  bool build_done = false;
  compile.Start([&] { build_done = true; });
  while (!build_done) {
    HA_CHECK(setup.sim->Step());
  }

  const sim::Time build_end = setup.sim->now();
  result.runtime_min = static_cast<double>(build_end - start) /
                       static_cast<double>(sim::kMin);

  if (options.detail_tail) {
    setup.sim->RunUntil(build_end + options.tail_idle);
    compile.MakeClean();
    setup.sim->RunUntil(build_end + 2 * options.tail_idle);
    vm.DropCaches();
    vm.PurgeAllocatorCaches();
    setup.sim->RunUntil(build_end + 2 * options.tail_idle + 30 * sim::kSec);
  }
  sampling = false;

  // Footprint over the build itself (Fig. 7 bars).
  metrics::TimeSeries build_rss;
  for (const auto& p : result.rss.points()) {
    if (p.at <= build_end - start) {
      build_rss.Sample(p.at, p.value);
    }
  }
  result.footprint_gib_min = build_rss.IntegralPerMinute();
  result.peak_rss_gib = result.rss.Max();
  if (setup.deflator != nullptr) {
    result.cpu = setup.deflator->cpu();
    setup.deflator->StopAuto();
  }
  result.fault_time = vm.fault_time();
  result.ept_faults = vm.ept_faults_2m() + vm.ept_faults_4k();
  result.oom_events = vm.oom_events();
  if (vm.iommu() != nullptr) {
    result.iommu_maps = vm.iommu()->map_ops();
    result.iotlb_flushes = vm.iommu()->iotlb_flushes();
  }
  return result;
}

}  // namespace hyperalloc::bench

#endif  // HYPERALLOC_BENCH_COMPILE_HARNESS_H_
