// E4/E5 — reproduces Fig. 7 (memory footprint, runtime, and QEMU CPU
// times of a clang compilation under automatic reclamation, including the
// virtio-balloon parameter sweep) and, with --detail, Fig. 8 (the
// in-depth time series with `make clean` and cache dropping).
//
//   bench_compiling                Fig. 7 table (use --extra for the full
//                                  o/d/c sweep, --runs=N for averaging)
//   bench_compiling --detail       Fig. 8 CSV series for virtio-balloon
//                                  (default reporting config) + HyperAlloc
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/compile_harness.h"
#include "bench/trace_io.h"
#include "src/base/stats.h"

namespace hyperalloc::bench {
namespace {

struct Config {
  std::string label;
  Candidate candidate;
  balloon::BalloonConfig balloon;
  bool auto_reclaim = true;
};

std::vector<Config> BuildConfigs(bool extra) {
  std::vector<Config> configs;
  configs.push_back({"Buddy (baseline)", Candidate::kBaselineBuddy, {}, false});
  configs.push_back(
      {"LLFree (baseline)", Candidate::kBaselineLLFree, {}, false});

  // virtio-balloon free-page reporting; the kernel default (o=9, d=2 s,
  // c=32) is the paper's bold row.
  auto fpr = [](unsigned order, sim::Time delay, unsigned capacity) {
    balloon::BalloonConfig config;
    config.reporting_order = order;
    config.reporting_delay = delay;
    config.reporting_capacity = capacity;
    return config;
  };
  configs.push_back({"virtio-balloon (o=9 d=2000 c=32) [default]",
                     Candidate::kBalloon, fpr(9, 2 * sim::kSec, 32)});
  if (extra) {
    configs.push_back({"virtio-balloon (o=9 d=100 c=32)",
                       Candidate::kBalloon, fpr(9, 100 * sim::kMs, 32)});
    configs.push_back({"virtio-balloon (o=9 d=2000 c=512)",
                       Candidate::kBalloon, fpr(9, 2 * sim::kSec, 512)});
    configs.push_back({"virtio-balloon (o=0 d=100 c=32)",
                       Candidate::kBalloon, fpr(0, 100 * sim::kMs, 32)});
    configs.push_back({"virtio-balloon (o=0 d=2000 c=512)",
                       Candidate::kBalloon, fpr(0, 2 * sim::kSec, 512)});
  }
  configs.push_back({"virtio-mem (simulated auto)", Candidate::kVmem, {}});
  configs.push_back({"HyperAlloc", Candidate::kHyperAlloc, {}});
  // Ablation (6): the HyperAlloc protocol without the co-designed
  // allocator — aux-state interface over the buddy allocator.
  configs.push_back(
      {"HyperAlloc-generic (buddy + aux state)", Candidate::kHyperAllocGeneric,
       {}});
  return configs;
}

CompileRunOptions MakeOptions(const Config& config, uint64_t seed) {
  CompileRunOptions options;
  options.memory_bytes = 16 * kGiB;
  options.compile.seed = seed;
  options.compile.compile_units = 800;
  options.compile.link_jobs = 16;
  options.compile.thp_fraction = 0.6;
  options.compile.cache_read_per_unit = 5 * kMiB;
  options.compile.artifact_per_unit = 8 * kMiB;
  options.auto_reclaim = config.auto_reclaim;
  options.setup_options.balloon = config.balloon;
  return options;
}

int RunTable(int runs, bool extra) {
  std::printf("Fig. 7: clang compilation with automatic reclamation "
              "(16 GiB VM, %d run%s per candidate)\n\n",
              runs, runs == 1 ? "" : "s");
  std::printf("%-42s %12s %9s %8s %8s %8s\n", "candidate",
              "footprint", "runtime", "guest", "user", "system");
  std::printf("%-42s %12s %9s %8s %8s %8s\n", "", "[GiB*min]", "[min]",
              "[s]", "[s]", "[s]");

  for (const Config& config : BuildConfigs(extra)) {
    std::vector<double> footprint;
    std::vector<double> runtime;
    hv::CpuAccounting cpu;
    sim::Time fault_ns = 0;
    uint64_t oom = 0;
    for (int run = 0; run < runs; ++run) {
      const CompileRunResult result =
          RunCompile(config.candidate, MakeOptions(config, 1 + run));
      footprint.push_back(result.footprint_gib_min);
      runtime.push_back(result.runtime_min);
      cpu.guest_ns += result.cpu.guest_ns / runs;
      cpu.host_user_ns += result.cpu.host_user_ns / runs;
      cpu.host_sys_ns += result.cpu.host_sys_ns / runs;
      fault_ns += result.fault_time / runs;
      oom += result.oom_events;
    }
    const Summary fp = Summarize(footprint);
    const Summary rt = Summarize(runtime);
    std::printf("%-42s %8.1f+/-%-4.1f %9.2f %8.2f %8.2f %8.2f%s\n",
                config.label.c_str(), fp.mean, fp.ci95, rt.mean,
                static_cast<double>(cpu.guest_ns) / 1e9,
                static_cast<double>(cpu.host_user_ns) / 1e9,
                static_cast<double>(cpu.host_sys_ns + fault_ns) / 1e9,
                oom > 0 ? "  [OOM!]" : "");
    std::fflush(stdout);
  }
  return 0;
}

int RunDetail() {
  ::mkdir("bench_out", 0755);
  std::printf("Fig. 8: in-depth clang compilation analysis "
              "(build + idle + make clean + idle + drop caches)\n\n");

  const Config detail_configs[] = {
      {"virtio-balloon (o=9 d=2000 c=32)", Candidate::kBalloon,
       [] {
         balloon::BalloonConfig config;
         config.reporting_order = 9;
         return config;
       }()},
      {"HyperAlloc", Candidate::kHyperAlloc, {}},
  };
  for (const Config& config : detail_configs) {
    CompileRunOptions options = MakeOptions(config, 1);
    options.detail_tail = true;
    const CompileRunResult result = RunCompile(config.candidate, options);
    const std::string base = std::string("bench_out/compiling_detail_") +
                             (config.candidate == Candidate::kBalloon
                                  ? "balloon"
                                  : "hyperalloc");
    result.rss.WriteCsv(base + "_rss.csv", "vm_gib");
    result.huge.WriteCsv(base + "_huge.csv", "huge_gib");
    result.small.WriteCsv(base + "_small.csv", "small_gib");
    result.cached.WriteCsv(base + "_cached.csv", "cached_gib");
    std::printf("%-36s end RSS %.2f GiB (min over tail %.2f GiB), "
                "series -> %s_*.csv\n",
                config.label.c_str(), result.rss.Last(), result.rss.Min(),
                base.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  int runs = 2;
  bool extra = false;
  bool detail = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--extra") == 0) {
      extra = true;
    } else if (std::strcmp(argv[i], "--detail") == 0) {
      detail = true;
    }
  }
  if (detail) {
    return RunDetail();
  }
  return RunTable(runs, extra);
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
