// E1 — reproduces Fig. 4 (reclamation/return speed, §5.3) and Table 1
// (candidate capability matrix).
//
// Procedure (per candidate, repeated `--reps` times on fresh VMs):
//   prepare:          write into 19 GiB of guest pages, then free them
//   reclaim:          shrink the hard limit 20 GiB -> 2 GiB
//   return:           grow 2 GiB -> 20 GiB (no access)
//   reclaim untouched: shrink again (memory never re-accessed)
//   return+install:   grow again, then allocate and write 18 GiB
//
// Rates are GiB/s of limit change in virtual time; error is the 95 %
// confidence interval over the repetitions.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/candidates.h"
#include "bench/trace_io.h"
#include "src/base/stats.h"
#include "src/base/units.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::bench {
namespace {

constexpr uint64_t kMemory = 20 * kGiB;
constexpr uint64_t kSmall = 2 * kGiB;
constexpr uint64_t kPrepare = 19 * kGiB;
constexpr uint64_t kDelta = kMemory - kSmall;

struct Rates {
  std::vector<double> reclaim;
  std::vector<double> reclaim_untouched;
  std::vector<double> ret;
  std::vector<double> ret_install;
};

double Gibps(uint64_t bytes, sim::Time ns) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB) /
         (static_cast<double>(ns) / 1e9);
}

void RunOnce(Candidate candidate, Rates* rates) {
  Setup setup = MakeSetup(candidate);
  workloads::MemoryPool pool(setup.vm.get());

  // Prepare: make 19 GiB of guest memory host-backed (the paper writes
  // into the pages via a kernel module before the benchmark).
  const uint64_t prep = pool.AllocRegion(kPrepare, /*thp_fraction=*/0.95, 0);
  pool.FreeRegion(prep, 0);
  setup.vm->PurgeAllocatorCaches();

  rates->reclaim.push_back(Gibps(kDelta, setup.SetLimit(kSmall)));
  rates->ret.push_back(Gibps(kDelta, setup.SetLimit(kMemory)));
  rates->reclaim_untouched.push_back(Gibps(kDelta, setup.SetLimit(kSmall)));

  // Return + install: grow and immediately allocate + write 18 GiB
  // (single-threaded guest kernel module in the paper).
  const sim::Time t0 = setup.sim->now();
  setup.SetLimit(kMemory);
  const uint64_t install = pool.AllocRegion(18 * kGiB, 0.95, 0);
  rates->ret_install.push_back(Gibps(kDelta, setup.sim->now() - t0));
  pool.FreeRegion(install, 0);
}

void PrintMatrix() {
  std::printf("Table 1: evaluation candidates and their properties\n");
  std::printf("%-22s %-12s %-7s %-6s %-9s\n", "name", "granularity",
              "manual", "auto", "dma-safe");
  struct Row {
    Candidate candidate;
    bool manual;
    bool auto_mode;
  };
  const Row rows[] = {
      {Candidate::kBalloon, true, true},
      {Candidate::kBalloonHuge, true, true},
      {Candidate::kVmem, true, false},
      {Candidate::kHyperAlloc, true, true},
  };
  for (const Row& row : rows) {
    Setup setup = MakeSetup(row.candidate, {.memory_bytes = 4 * kGiB});
    const hv::DeflatorCaps caps = setup.deflator->caps();
    std::printf("%-22s %-12s %-7s %-6s %-9s\n", Name(row.candidate),
                FormatBytes(caps.granularity_bytes).c_str(),
                row.manual ? "yes" : "no", row.auto_mode ? "yes" : "no",
                caps.dma_safe ? "yes" : "no");
  }
  std::printf("(VProbe omitted: implementation unavailable, as in the "
              "paper)\n\n");
}

void PrintRow(const char* name, const std::vector<double>& rates) {
  const Summary s = Summarize(rates);
  std::printf("  %-22s %9.2f GiB/s  (+/- %.2f)\n", name, s.mean, s.ci95);
}

int Main(int argc, char** argv) {
  int reps = 5;
  bool matrix_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--matrix") == 0) {
      matrix_only = true;
    }
  }

  PrintMatrix();
  if (matrix_only) {
    return 0;
  }

  std::printf("Fig. 4: speed of reclaiming/returning memory "
              "(20 GiB <-> 2 GiB, %d repetitions)\n\n", reps);

  std::vector<std::pair<Candidate, Rates>> results;
  for (const Candidate candidate : DeflationCandidates(true)) {
    Rates rates;
    for (int rep = 0; rep < reps; ++rep) {
      RunOnce(candidate, &rates);
    }
    results.emplace_back(candidate, std::move(rates));
  }

  const char* const kSections[] = {"Reclaim", "Reclaim Untouched", "Return",
                                   "Return+Install"};
  for (int section = 0; section < 4; ++section) {
    std::printf("%s:\n", kSections[section]);
    for (const auto& [candidate, rates] : results) {
      const std::vector<double>* data = nullptr;
      switch (section) {
        case 0:
          data = &rates.reclaim;
          break;
        case 1:
          data = &rates.reclaim_untouched;
          break;
        case 2:
          data = &rates.ret;
          break;
        default:
          data = &rates.ret_install;
          break;
      }
      PrintRow(Name(candidate), *data);
    }
    std::printf("\n");
  }

  // Headline ratios (paper: 362x vs virtio-balloon, 10x vs virtio-mem).
  const double ha = Summarize(results[3].second.reclaim).mean;
  const double balloon = Summarize(results[0].second.reclaim).mean;
  const double vmem = Summarize(results[2].second.reclaim).mean;
  std::printf("HyperAlloc reclaim speedup: %.0fx vs virtio-balloon, "
              "%.1fx vs virtio-mem\n",
              ha / balloon, ha / vmem);
  return 0;
}

}  // namespace
}  // namespace hyperalloc::bench

int main(int argc, char** argv) {
  hyperalloc::bench::TraceOutput trace_out(argc, argv);
  return hyperalloc::bench::Main(argc, argv);
}
