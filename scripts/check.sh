#!/bin/sh
# Full verification wall:
#   1. tier-1 build + full ctest (default preset),
#   2. static gates (scripts/lint.sh),
#   3. full ctest under ASan+UBSan (asan-ubsan preset, no recovery),
#   4. the model checker in BOTH memory-model configurations — the
#      happens-before layer on (HYPERALLOC_MC_MM=1: stale reads, race
#      detection, the mutant scenarios) and off (HYPERALLOC_MC_MM=0:
#      the SC-only fallback every older scenario was written against).
#      A failure prints which configuration produced it,
#   5. ThreadSanitizer on the lock-free paths (tsan preset): the LLFree
#      concurrent stress test, the sharded host frame pool stress test,
#      the trace-layer counter/ring tests, and a capped model-check run
#      (the model checker is deterministic, so a small TSan run only
#      needs to cover the harness machinery itself).
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: build + ctest (preset: default) =="
cmake --preset default >/dev/null
cmake --build --preset default -j
ctest --preset default -j "$(nproc)"

echo "== lint: pragma-once / explicit memory orders / clang-tidy =="
sh scripts/lint.sh

echo "== asan-ubsan: full ctest (preset: asan-ubsan) =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j
ctest --preset asan-ubsan -j "$(nproc)"

echo "== model check: both memory-model configurations (preset: default) =="
# ctest above already ran these binaries in the build's default
# configuration; this wall pins each configuration explicitly so a
# regression names the offender ("memory model ON" vs "OFF") instead of
# depending on the developer's environment.
for mm in 1 0; do
  for bin in model_check_test memory_model_test; do
    if ! HYPERALLOC_MC_MM=$mm "./build/tests/$bin"; then
      echo "FAILED: $bin with HYPERALLOC_MC_MM=$mm (memory model" \
        "$([ "$mm" = 1 ] && echo ON || echo OFF))"
      exit 1
    fi
  done
done

echo "== tsan: lock-free paths (preset: tsan) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j \
  --target llfree_concurrent_test host_memory_test trace_test \
  model_check_test
./build-tsan/tests/llfree_concurrent_test
./build-tsan/tests/host_memory_test
./build-tsan/tests/trace_test
HYPERALLOC_MC_ITERS=50 ./build-tsan/tests/model_check_test

echo "== all checks passed =="
