#!/bin/sh
# Full verification: the tier-1 build + test cycle, plus a
# ThreadSanitizer build that exercises the lock-free paths (the LLFree
# concurrent stress test and the trace-layer counter/ring tests).
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== tsan: llfree_concurrent_test + trace_test =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
cmake --build build-tsan -j --target llfree_concurrent_test trace_test
./build-tsan/tests/llfree_concurrent_test
./build-tsan/tests/trace_test

echo "== all checks passed =="
