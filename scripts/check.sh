#!/bin/sh
# Full verification wall:
#   1. tier-1 build + full ctest (default preset),
#   2. static gates (scripts/lint.sh),
#   3. full ctest under ASan+UBSan (asan-ubsan preset, no recovery),
#   4. ThreadSanitizer on the lock-free paths (tsan preset): the LLFree
#      concurrent stress test, the sharded host frame pool stress test,
#      the trace-layer counter/ring tests, and a capped model-check run
#      (the model checker is deterministic, so a small TSan run only
#      needs to cover the harness machinery itself).
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: build + ctest (preset: default) =="
cmake --preset default >/dev/null
cmake --build --preset default -j
ctest --preset default -j "$(nproc)"

echo "== lint: pragma-once / explicit memory orders / clang-tidy =="
sh scripts/lint.sh

echo "== asan-ubsan: full ctest (preset: asan-ubsan) =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j
ctest --preset asan-ubsan -j "$(nproc)"

echo "== tsan: lock-free paths (preset: tsan) =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j \
  --target llfree_concurrent_test host_memory_test trace_test \
  model_check_test
./build-tsan/tests/llfree_concurrent_test
./build-tsan/tests/host_memory_test
./build-tsan/tests/trace_test
HYPERALLOC_MC_ITERS=50 ./build-tsan/tests/model_check_test

echo "== all checks passed =="
