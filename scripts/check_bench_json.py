#!/usr/bin/env python3
"""Validates a bench_runner JSON document (hyperalloc-bench-v1 schema).

Stdlib-only on purpose: runs in CI containers with no extra packages.
Checks structure and types, plus the semantic gates the runner itself
enforces (pool invariant, multi-VM determinism).
"""
import json
import numbers
import sys


def fail(message):
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def require(doc, key, kind, ctx):
    if key not in doc:
        fail(f"{ctx}: missing key '{key}'")
    value = doc[key]
    if kind is numbers.Real:
        ok = isinstance(value, numbers.Real) and not isinstance(value, bool)
    else:
        ok = isinstance(value, kind)
    if not ok:
        fail(f"{ctx}.{key}: expected {kind}, got {type(value).__name__}")
    return value


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py BENCH.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if require(doc, "schema", str, "$") != "hyperalloc-bench-v1":
        fail(f"unknown schema '{doc['schema']}'")
    require(doc, "pr", str, "$")
    require(doc, "smoke", bool, "$")
    require(doc, "hardware_concurrency", numbers.Real, "$")
    benches = require(doc, "benches", dict, "$")

    llfree = require(benches, "llfree_alloc_free", dict, "benches")
    for key in ("ops", "wall_ms", "ops_per_sec"):
        require(llfree, key, numbers.Real, "llfree_alloc_free")
    if llfree["ops"] <= 0 or llfree["ops_per_sec"] <= 0:
        fail("llfree_alloc_free: no work recorded")

    pool = require(benches, "host_reserve_release", dict, "benches")
    for key in ("threads", "ops", "wall_ms", "ops_per_sec", "refills",
                "drains", "rebalances"):
        require(pool, key, numbers.Real, "host_reserve_release")
    if not require(pool, "invariant_ok", bool, "host_reserve_release"):
        fail("host_reserve_release: pool invariant violated")
    if pool["ops"] <= 0:
        fail("host_reserve_release: no work recorded")

    multivm = require(benches, "multivm", dict, "benches")
    for key in ("vms", "threads", "wall_ms_single", "wall_ms_parallel",
                "footprint_gib_min", "peak_gib"):
        require(multivm, key, numbers.Real, "multivm")
    if not require(multivm, "deterministic", bool, "multivm"):
        fail("multivm: per-VM series differ between thread counts")
    if multivm["vms"] < 2:
        fail("multivm: needs at least 2 VMs to mean anything")

    print(f"check_bench_json: OK ({sys.argv[1]})")


if __name__ == "__main__":
    main()
