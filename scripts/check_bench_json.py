#!/usr/bin/env python3
"""Validates a bench JSON document.

Accepts all schema revisions:
  hyperalloc-bench-v1       (PR3: llfree / pool / multivm)
  hyperalloc-bench-v2       (PR4: adds the `attribution` section and the
                             multivm span-determinism fields)
  hyperalloc-bench-faults-v1 (PR5: bench_faults degraded-mode reclaim
                             sweep; the zero-rate baseline must be clean)
  hyperalloc-bench-v3       (PR6: adds the `llfree_batch_alloc_free`
                             section and host-pool `rebalance_skips`)
  hyperalloc-bench-v4       (PR8: adds the `fleet` orchestration section
                             and the `fleet_span_check` cross-check)
  hyperalloc-bench-fleet-v1 (PR8: standalone bench_fleet output; same
                             `fleet` section shape as v4's embedded one,
                             plus the PR9 `telemetry` subobject when the
                             emitting binary has the pipeline)
  hyperalloc-bench-v5       (PR9: adds the `telemetry` section — sampling
                             overhead, alert counts, flight-recorder
                             determinism and dump digest)
  hyperalloc-bench-v6       (PR10: adds the `huge_frame` section — the
                             §4.14 fragmentation/compaction study: reclaim
                             share split, compaction migrations, EPT flush
                             savings — and the fleet section's `huge`
                             subobject)
  hyperalloc-flight-v1      (PR9: a black-box flight-recorder dump frozen
                             by the telemetry pipeline; --min-epochs=N
                             additionally requires the ring to cover at
                             least N epochs before the trigger)

Stdlib-only on purpose: runs in CI containers with no extra packages.
Checks structure and types, plus the semantic gates the runner itself
enforces (pool invariant, multi-VM determinism, charge closure, span
stream determinism, fleet thread-count determinism and spike SLO).
"""
import json
import numbers
import sys


def fail(message):
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def require(doc, key, kind, ctx):
    if key not in doc:
        fail(f"{ctx}: missing key '{key}'")
    value = doc[key]
    if kind is numbers.Real:
        ok = isinstance(value, numbers.Real) and not isinstance(value, bool)
    else:
        ok = isinstance(value, kind)
    if not ok:
        fail(f"{ctx}.{key}: expected {kind}, got {type(value).__name__}")
    return value


def check_phase(phase, ctx):
    """One attribution phase (inflate/deflate): totals plus charge closure."""
    if not require(phase, "found", bool, ctx):
        fail(f"{ctx}: request root span not found in trace")
    for key in ("total_vns", "charged_ns", "wall_ms", "virtual_wall_skew"):
        require(phase, key, numbers.Real, ctx)
    if not require(phase, "charge_closed", bool, ctx):
        fail(f"{ctx}: span charges do not sum to the root's virtual "
             f"duration ({phase['charged_ns']} != {phase['total_vns']})")
    layers = require(phase, "layers", dict, ctx)
    if not layers:
        fail(f"{ctx}: no per-layer attribution recorded")
    share_sum = 0.0
    for layer, entry in layers.items():
        require(entry, "ns", numbers.Real, f"{ctx}.layers.{layer}")
        share_sum += require(entry, "share", numbers.Real,
                             f"{ctx}.layers.{layer}")
    if not 0.98 <= share_sum <= 1.02:
        fail(f"{ctx}: layer shares sum to {share_sum:.3f}, expected ~1")


def check_faults(doc):
    """hyperalloc-bench-faults-v1: degraded-mode reclaim sweep."""
    require(doc, "pr", str, "$")
    require(doc, "smoke", bool, "$")
    require(doc, "seed", numbers.Real, "$")
    candidates = require(doc, "candidates", list, "$")
    if not candidates:
        fail("candidates: empty")
    for candidate in candidates:
        name = require(candidate, "name", str, "candidates[]")
        ctx = f"candidates[{name}]"
        sweep = require(candidate, "sweep", list, ctx)
        if not sweep:
            fail(f"{ctx}: empty sweep")
        baseline = None
        for point in sweep:
            pctx = f"{ctx}.sweep[{point.get('rate')}]"
            for key in ("rate", "reclaim_gibps", "virtual_ms",
                        "start_bytes", "target_bytes", "achieved_bytes",
                        "faults", "retries", "rollbacks", "injected_total"):
                require(point, key, numbers.Real, pctx)
            for key in ("complete", "timed_out", "quarantined"):
                require(point, key, bool, pctx)
            require(point, "plan", str, pctx)
            if point["rate"] == 0:
                baseline = point
        # The zero-rate baseline is the injection-off determinism anchor:
        # no faults may be observed and the request must fully complete.
        if baseline is None:
            fail(f"{ctx}: no zero-rate baseline in sweep")
        if baseline["faults"] != 0 or baseline["injected_total"] != 0:
            fail(f"{ctx}: zero-rate run observed faults "
                 f"({baseline['faults']} on spans, "
                 f"{baseline['injected_total']} injected)")
        if not baseline["complete"]:
            fail(f"{ctx}: zero-rate run did not complete its reclaim")
        if baseline["reclaim_gibps"] <= 0:
            fail(f"{ctx}: zero-rate run reclaimed nothing")


def check_fleet_telemetry(tel, ctx):
    """The telemetry digest subobject embedded in a fleet section."""
    require(tel, "enabled", bool, ctx)
    for key in ("epochs", "alerts", "flight_dumps"):
        require(tel, key, numbers.Real, ctx)
    for key in ("telemetry_digest", "flight_digest"):
        value = require(tel, key, str, ctx)
        if not value.startswith("0x") or len(value) != 18:
            fail(f"{ctx}.{key}: expected 0x-prefixed 64-bit hex, "
                 f"got '{value}'")
    if tel["enabled"] and tel["epochs"] <= 0:
        fail(f"{ctx}: telemetry enabled but sampled no epochs")
    if not tel["enabled"] and tel["telemetry_digest"] != "0x" + "0" * 16:
        fail(f"{ctx}: telemetry disabled but digest nonzero")


def check_fleet(fleet, ctx):
    """One fleet section (embedded `benches.fleet` or standalone)."""
    for key in ("vms", "threads", "vm_mib", "host_gib", "horizon_s",
                "epoch_s", "resizes", "p50_resize_ms", "p99_resize_ms",
                "footprint_gib_min", "peak_gib", "pool_peak_gib",
                "wall_ms"):
        require(fleet, key, numbers.Real, ctx)
    for key in ("policy", "arrival", "candidate", "fleet_digest"):
        require(fleet, key, str, ctx)
    # Byte-identical VM outcomes across worker-thread counts is the
    # fleet engine's core contract; a run that broke it is not a result.
    if not require(fleet, "deterministic", bool, ctx):
        fail(f"{ctx}: VM digests differ between worker-thread counts")
    if fleet["vms"] < 2:
        fail(f"{ctx}: needs at least 2 VMs to mean anything")
    if fleet["resizes"] <= 0:
        fail(f"{ctx}: the policy issued no resizes")
    if fleet["p99_resize_ms"] < fleet["p50_resize_ms"]:
        fail(f"{ctx}: p99 resize latency below p50")
    admission = require(fleet, "admission", dict, ctx)
    for key in ("granted", "clipped", "rejected"):
        require(admission, key, numbers.Real, f"{ctx}.admission")
    if admission["granted"] <= 0:
        fail(f"{ctx}: admission control granted nothing")
    spike = require(fleet, "spike", dict, ctx)
    for key in ("vms", "mib", "time_to_reclaim_ms"):
        require(spike, key, numbers.Real, f"{ctx}.spike")
    for key in ("applied", "satisfied"):
        require(spike, key, bool, f"{ctx}.spike")
    # A fault-injected run may quarantine spiked VMs, in which case the
    # spike legitimately never satisfies; only clean runs must reclaim.
    fault_injected = bool(fleet.get("fault_plan"))
    if spike["vms"] > 0 and spike["applied"]:
        if not spike["satisfied"] and not fault_injected:
            fail(f"{ctx}: pressure spike never satisfied (time-to-reclaim "
                 f"SLO unmeasurable)")
        if spike["time_to_reclaim_ms"] < 0:
            fail(f"{ctx}: negative time-to-reclaim")
    # PR9 emitters embed the telemetry digests; older fleet-v1 documents
    # predate the pipeline and legitimately lack the key.
    if "telemetry" in fleet:
        check_fleet_telemetry(fleet["telemetry"], f"{ctx}.telemetry")
    # PR10 emitters report the fleet-wide huge-frame reclaim split.
    if "huge" in fleet:
        huge = fleet["huge"]
        hctx = f"{ctx}.huge"
        require(huge, "mode", bool, hctx)
        for key in ("reclaim_untouched", "reclaim_2m", "reclaim_4k",
                    "share"):
            require(huge, key, numbers.Real, hctx)
        if not 0.0 <= huge["share"] <= 1.0:
            fail(f"{hctx}: share {huge['share']} outside [0, 1]")


def check_huge_variant(variant, ctx):
    """One huge_frame churn variant (compaction off/on)."""
    require(variant, "compaction", bool, ctx)
    for key in ("frag_before", "frag_after", "compaction_blocks",
                "compaction_migrations", "reclaim_untouched", "reclaim_2m",
                "reclaim_4k", "share", "reclaimed_mib", "flush_entries_2m",
                "flush_entries_4k", "flush_entries_all4k", "flush_savings",
                "wall_ms"):
        require(variant, key, numbers.Real, ctx)
    for key in ("frag_before", "frag_after", "share"):
        if not 0.0 <= variant[key] <= 1.0:
            fail(f"{ctx}.{key}: {variant[key]} outside [0, 1]")
    reclaimed = (variant["reclaim_untouched"] + variant["reclaim_2m"] +
                 variant["reclaim_4k"])
    if reclaimed <= 0:
        fail(f"{ctx}: shrink reclaimed no huge frames")


def check_flight(doc, min_epochs):
    """hyperalloc-flight-v1: one frozen flight-recorder dump."""
    trigger = require(doc, "trigger", dict, "$")
    kind = require(trigger, "kind", str, "trigger")
    if kind not in ("alert", "quarantine", "reject_spike"):
        fail(f"trigger.kind: unknown trigger '{kind}'")
    require(trigger, "epoch", numbers.Real, "trigger")
    require(trigger, "at_s", numbers.Real, "trigger")
    if kind == "quarantine":
        require(trigger, "vm", numbers.Real, "trigger")
    vms = require(doc, "vms", numbers.Real, "$")
    shards = require(doc, "shards", numbers.Real, "$")
    if vms <= 0 or shards <= 0:
        fail("flight dump covers no VMs/shards")
    for alert in require(doc, "alerts", list, "$"):
        actx = "alerts[]"
        require(alert, "epoch", numbers.Real, actx)
        require(alert, "at_s", numbers.Real, actx)
        if require(alert, "kind", str, actx) not in ("latency_burn",
                                                     "pressure_burn"):
            fail(f"{actx}: unknown alert kind '{alert['kind']}'")
        require(alert, "burn_fast", numbers.Real, actx)
        require(alert, "burn_slow", numbers.Real, actx)
    epochs = require(doc, "epochs", list, "$")
    if len(epochs) < min_epochs:
        fail(f"flight ring covers {len(epochs)} epochs, "
             f"need >= {min_epochs}")
    previous = None
    for entry in epochs:
        ectx = f"epochs[{entry.get('epoch')}]"
        for key in ("epoch", "at_s", "pressure", "committed_bytes",
                    "limit_bytes", "wss_bytes", "rss_bytes", "busy_vms",
                    "quarantined_vms", "granted", "clipped", "rejected",
                    "rejected_delta", "faults", "retries", "rollbacks",
                    "latency_burn_fast", "latency_burn_slow",
                    "pressure_burn_fast", "pressure_burn_slow"):
            require(entry, key, numbers.Real, ectx)
        if previous is not None and entry["epoch"] != previous + 1:
            fail(f"{ectx}: ring epochs not consecutive "
                 f"({previous} -> {entry['epoch']})")
        previous = entry["epoch"]
        shard_list = require(entry, "shards", list, ectx)
        if len(shard_list) != shards:
            fail(f"{ectx}: {len(shard_list)} shard rollups, "
                 f"expected {shards}")
        shard_vms = 0
        for shard in shard_list:
            sctx = f"{ectx}.shards[{shard.get('shard')}]"
            for key in ("shard", "vms", "limit_bytes", "wss_bytes",
                        "rss_bytes", "busy_vms", "quarantined_vms",
                        "faults"):
                require(shard, key, numbers.Real, sctx)
            shard_vms += shard["vms"]
        if shard_vms != vms:
            fail(f"{ectx}: shard rollups cover {shard_vms} VMs, "
                 f"expected {vms}")
        deltas = require(entry, "counter_deltas", dict, ectx)
        for name, value in deltas.items():
            if not isinstance(value, numbers.Real) or value <= 0:
                fail(f"{ectx}.counter_deltas.{name}: deltas must be "
                     f"positive (zero deltas are dropped)")
        omitted = require(entry, "vms_detail_omitted", numbers.Real, ectx)
        if omitted < 0:
            fail(f"{ectx}: vms_detail_omitted must be non-negative")
        detail = require(entry, "vms_detail", list, ectx)
        if len(detail) + omitted > vms:
            fail(f"{ectx}: vms_detail covers {len(detail)} rows plus "
                 f"{omitted} omitted, exceeding the {vms}-VM fleet")
        for vm in detail:
            vctx = f"{ectx}.vms_detail[{vm.get('vm')}]"
            for key in ("vm", "limit_bytes", "target_bytes",
                        "achieved_bytes", "wss_bytes", "rss_bytes",
                        "demand_bytes", "busy", "quarantined", "resizes",
                        "faults", "retries", "rollbacks",
                        "quarantined_frames"):
                require(vm, key, numbers.Real, vctx)
    # The trigger epoch must be the newest frame in the ring.
    if epochs and epochs[-1]["epoch"] != trigger["epoch"]:
        fail(f"trigger fired at epoch {trigger['epoch']} but the ring "
             f"ends at {epochs[-1]['epoch']}")


def main():
    min_epochs = 0
    paths = []
    for arg in sys.argv[1:]:
        if arg.startswith("--min-epochs="):
            min_epochs = int(arg[len("--min-epochs="):])
        else:
            paths.append(arg)
    if len(paths) != 1:
        fail("usage: check_bench_json.py [--min-epochs=N] BENCH.json")
    try:
        with open(paths[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {paths[0]}: {e}")

    schema = require(doc, "schema", str, "$")
    if schema == "hyperalloc-bench-faults-v1":
        check_faults(doc)
        print(f"check_bench_json: OK ({paths[0]}, {schema})")
        return
    if schema == "hyperalloc-bench-fleet-v1":
        check_fleet(require(doc, "fleet", dict, "$"), "fleet")
        print(f"check_bench_json: OK ({paths[0]}, {schema})")
        return
    if schema == "hyperalloc-flight-v1":
        check_flight(doc, min_epochs)
        print(f"check_bench_json: OK ({paths[0]}, {schema}, "
              f"{len(doc['epochs'])} ring epochs)")
        return
    if schema not in ("hyperalloc-bench-v1", "hyperalloc-bench-v2",
                      "hyperalloc-bench-v3", "hyperalloc-bench-v4",
                      "hyperalloc-bench-v5", "hyperalloc-bench-v6"):
        fail(f"unknown schema '{schema}'")
    v6 = schema == "hyperalloc-bench-v6"
    v5 = schema == "hyperalloc-bench-v5" or v6
    v4 = schema == "hyperalloc-bench-v4" or v5
    v3 = schema == "hyperalloc-bench-v3" or v4
    v2 = schema == "hyperalloc-bench-v2" or v3
    require(doc, "pr", str, "$")
    require(doc, "smoke", bool, "$")
    require(doc, "hardware_concurrency", numbers.Real, "$")
    benches = require(doc, "benches", dict, "$")

    llfree = require(benches, "llfree_alloc_free", dict, "benches")
    for key in ("ops", "wall_ms", "ops_per_sec"):
        require(llfree, key, numbers.Real, "llfree_alloc_free")
    if llfree["ops"] <= 0 or llfree["ops_per_sec"] <= 0:
        fail("llfree_alloc_free: no work recorded")

    if v3:
        batch = require(benches, "llfree_batch_alloc_free", dict, "benches")
        for key in ("batch", "ops", "wall_ms", "ops_per_sec",
                    "single_ops_per_sec", "cached_ops_per_sec",
                    "speedup_vs_single"):
            require(batch, key, numbers.Real, "llfree_batch_alloc_free")
        if batch["ops"] <= 0 or batch["ops_per_sec"] <= 0:
            fail("llfree_batch_alloc_free: no work recorded")
        if batch["speedup_vs_single"] <= 0:
            fail("llfree_batch_alloc_free: no single-frame comparison run")

    pool = require(benches, "host_reserve_release", dict, "benches")
    pool_keys = ["threads", "ops", "wall_ms", "ops_per_sec", "refills",
                 "drains", "rebalances"]
    if v3:
        pool_keys.append("rebalance_skips")
    for key in pool_keys:
        require(pool, key, numbers.Real, "host_reserve_release")
    if not require(pool, "invariant_ok", bool, "host_reserve_release"):
        fail("host_reserve_release: pool invariant violated")
    if pool["ops"] <= 0:
        fail("host_reserve_release: no work recorded")

    multivm = require(benches, "multivm", dict, "benches")
    for key in ("vms", "threads", "wall_ms_single", "wall_ms_parallel",
                "footprint_gib_min", "peak_gib"):
        require(multivm, key, numbers.Real, "multivm")
    if not require(multivm, "deterministic", bool, "multivm"):
        fail("multivm: per-VM series differ between thread counts")
    if multivm["vms"] < 2:
        fail("multivm: needs at least 2 VMs to mean anything")

    if v2:
        attribution = require(benches, "attribution", dict, "benches")
        if require(attribution, "enabled", bool, "attribution"):
            require(attribution, "candidate", str, "attribution")
            require(attribution, "dropped_spans", numbers.Real, "attribution")
            if attribution["dropped_spans"] != 0:
                fail("attribution: span ring dropped events; raise capacity")
            check_phase(require(attribution, "inflate", dict, "attribution"),
                        "attribution.inflate")
            check_phase(require(attribution, "deflate", dict, "attribution"),
                        "attribution.deflate")
            overhead = require(attribution, "trace_overhead", dict,
                               "attribution")
            for key in ("traced_wall_ms", "untraced_wall_ms", "overhead_pct"):
                require(overhead, key, numbers.Real,
                        "attribution.trace_overhead")
        # enabled=false is legal (HYPERALLOC_TRACE=0 build): the section
        # must exist and say so, nothing more to check.

        require(multivm, "spans_checked", bool, "multivm")
        require(multivm, "spans_single", numbers.Real, "multivm")
        require(multivm, "spans_dropped", numbers.Real, "multivm")
        if multivm["spans_checked"]:
            if not require(multivm, "spans_deterministic", bool, "multivm"):
                fail("multivm: canonical span streams differ between "
                     "thread counts")

    if v4:
        check_fleet(require(benches, "fleet", dict, "benches"),
                    "benches.fleet")
        span = require(benches, "fleet_span_check", dict, "benches")
        require(span, "checked", bool, "fleet_span_check")
        require(span, "matched", bool, "fleet_span_check")
        require(span, "span_p99_ms", numbers.Real, "fleet_span_check")
        require(span, "engine_p99_ms", numbers.Real, "fleet_span_check")
        if span["checked"] and not span["matched"]:
            fail("fleet_span_check: span-derived p99 resize latency "
                 f"({span['span_p99_ms']}) disagrees with the engine's "
                 f"({span['engine_p99_ms']})")

    if v5:
        tel = require(benches, "telemetry", dict, "benches")
        enabled = require(tel, "enabled", bool, "telemetry")
        for key in ("epochs", "alerts", "wall_ms_on", "wall_ms_off",
                    "telemetry_overhead_pct"):
            require(tel, key, numbers.Real, "telemetry")
        flight = require(tel, "flight", dict, "telemetry")
        for key in ("dumps", "ring_epochs"):
            require(flight, key, numbers.Real, "telemetry.flight")
        require(flight, "digest", str, "telemetry.flight")
        if enabled:
            # The digests must match across worker-thread counts — a
            # diverging stream means the pipeline leaked thread order.
            if not require(tel, "deterministic", bool, "telemetry"):
                fail("telemetry: stream digest differs between "
                     "worker-thread counts")
            if not require(flight, "deterministic", bool,
                           "telemetry.flight"):
                fail("telemetry.flight: dump bytes differ between "
                     "worker-thread counts")
            if tel["epochs"] <= 0:
                fail("telemetry: enabled but sampled no epochs")
            # The runner's fault-plan probe must actually freeze a dump;
            # a recorder that never triggers is untested.
            if flight["dumps"] <= 0:
                fail("telemetry.flight: the quarantine probe froze no "
                     "dump")
            if min_epochs and flight["ring_epochs"] < min_epochs:
                fail(f"telemetry.flight: ring covered "
                     f"{flight['ring_epochs']} epochs, need "
                     f">= {min_epochs}")

    if v6:
        huge = require(benches, "huge_frame", dict, "benches")
        for key in ("memory_mib", "share", "compaction_migrations",
                    "flush_savings"):
            require(huge, key, numbers.Real, "huge_frame")
        no_compaction = require(huge, "no_compaction", dict, "huge_frame")
        with_compaction = require(huge, "with_compaction", dict,
                                  "huge_frame")
        check_huge_variant(no_compaction, "huge_frame.no_compaction")
        check_huge_variant(with_compaction, "huge_frame.with_compaction")
        # The runner's own exit gates, mirrored: compaction must evacuate
        # blocks, lower the fragmentation score, and not reclaim less
        # than the uncompacted run. (perf_gate.py holds the share floor.)
        if with_compaction["compaction_blocks"] <= 0:
            fail("huge_frame.with_compaction: compaction evacuated no "
                 "blocks")
        if with_compaction["frag_after"] >= with_compaction["frag_before"]:
            fail("huge_frame.with_compaction: compaction did not lower "
                 "the fragmentation score")
        if with_compaction["reclaimed_mib"] < no_compaction["reclaimed_mib"]:
            fail("huge_frame: compaction reclaimed less than the "
                 "uncompacted run")
        probe = require(huge, "balloon_probe", dict, "huge_frame")
        for key in ("demotions_2m", "flush_savings"):
            require(probe, key, numbers.Real, "huge_frame.balloon_probe")

    print(f"check_bench_json: OK ({paths[0]}, {schema})")


if __name__ == "__main__":
    main()
