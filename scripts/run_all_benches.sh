#!/bin/sh
# Regenerates every table and figure of the paper's evaluation.
# Outputs: stdout tables (tee'd to bench_output.txt by CI) and
# bench_out/*.csv time series.
set -e
cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}

$BUILD/bench/bench_inflate --reps=3          # Fig. 4 + Table 1
$BUILD/bench/bench_stream                    # Fig. 5 + Table 2 (STREAM)
$BUILD/bench/bench_ftq                       # Fig. 6 + Table 2 (FTQ)
$BUILD/bench/bench_compiling --runs=2        # Fig. 7 (add --extra for sweep)
$BUILD/bench/bench_compiling --detail        # Fig. 8
$BUILD/bench/bench_vfio_compile --runs=1     # Fig. 9
$BUILD/bench/bench_blender                   # Fig. 10
$BUILD/bench/bench_multivm                   # Fig. 11
$BUILD/bench/bench_overcommit                # 6 overcommit extension
$BUILD/bench/bench_fleet                     # 4.12 fleet orchestration
$BUILD/bench/bench_ablation                  # 4.2 ablation
$BUILD/bench/bench_scan                      # 3.3 scan cost (real time)
$BUILD/bench/bench_llfree                    # LLFree ops (real time)
