#!/bin/sh
# Performance snapshot: builds the default preset, runs bench_runner, and
# validates the emitted JSON against the hyperalloc-bench-v6 schema.
#
#   scripts/bench.sh              full run, writes BENCH_PR10.json
#   scripts/bench.sh --smoke      CI-sized run (seconds), same schema
#
# Extra flags are passed through to bench_runner (e.g. --threads=8,
# --batch=N, --out=PATH, --trace-out=PATH). The JSON at the repo root is
# the committed perf baseline; scripts/perf_gate.py compares a fresh run
# against the committed baselines (latest gates, earlier ones feed the
# trendline).
set -e
cd "$(dirname "$0")/.."

OUT=BENCH_PR10.json
for arg in "$@"; do
  case "$arg" in
    --out=*) OUT="${arg#--out=}" ;;
  esac
done

cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc)" >/dev/null

./build/bench/bench_runner "$@"

python3 scripts/check_bench_json.py "$OUT"
echo "bench OK: $OUT"
