#!/usr/bin/env python3
"""Renders repo CSV artifacts as a standalone SVG (no external
dependencies).

Time-series mode (default) plots bench_out/*.csv series, e.g.:

  scripts/plot_csv.py fig8.svg \
      bench_out/compiling_detail_balloon_rss.csv \
      bench_out/compiling_detail_balloon_small.csv \
      bench_out/compiling_detail_balloon_cached.csv

Each CSV must have a `time_s,<name>` header as written by
metrics::TimeSeries::WriteCsv.

Spans mode plots the fault-injection annotations of a spans CSV (the
.spans.csv written via --trace-out; 14-column format with faults and
retries, 12-column pre-fault traces plot as flat zero lines):

  scripts/plot_csv.py --spans faults.svg trace.spans.csv

Fleet mode plots columns of the fleet telemetry CSV (PREFIX.fleet.csv
written by bench_fleet --telemetry-out=PREFIX); pick columns with
--cols (comma-separated header names):

  scripts/plot_csv.py --fleet burn.svg telemetry.fleet.csv \
      --cols=pressure,latency_burn_fast,pressure_burn_fast
"""
import sys


PALETTE = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
           "#ff8ab7", "#a463f2", "#97bbf5"]
WIDTH, HEIGHT = 960, 480
MARGIN = {"left": 70, "right": 180, "top": 30, "bottom": 50}

FLEET_DEFAULT_COLS = ["pressure", "latency_burn_fast", "pressure_burn_fast"]


def read_series(path):
    with open(path) as handle:
        header = handle.readline().strip().split(",")
        name = header[1] if len(header) > 1 else path
        points = []
        for line in handle:
            parts = line.strip().split(",")
            if len(parts) < 2:
                continue
            points.append((float(parts[0]), float(parts[1])))
    return path.rsplit("/", 1)[-1].removesuffix(".csv"), name, points


def read_spans(path):
    """Cumulative injected faults/retries over virtual time, from a spans
    CSV (14 columns with faults/retries at indices 10/11; legacy
    12-column traces have neither and plot as zero)."""
    events = []
    with open(path) as handle:
        handle.readline()  # header
        for line in handle:
            parts = line.strip().split(",")
            if len(parts) == 14:
                end_s = float(parts[7]) / 1e9
                events.append((end_s, int(parts[10]), int(parts[11])))
            elif len(parts) == 12:
                events.append((float(parts[7]) / 1e9, 0, 0))
    if not events:
        sys.exit(f"no spans in {path}")
    events.sort()
    faults = []
    retries = []
    fault_total = retry_total = 0
    for end_s, fault_count, retry_count in events:
        fault_total += fault_count
        retry_total += retry_count
        faults.append((end_s, fault_total))
        retries.append((end_s, retry_total))
    return [("faults", "cumulative faults", faults),
            ("retries", "cumulative retries", retries)]


def read_fleet(path, cols):
    """Selected columns of a telemetry fleet CSV, one series each. The
    header row names the columns (time_s first)."""
    with open(path) as handle:
        header = handle.readline().strip().split(",")
        if not header or header[0] != "time_s":
            sys.exit(f"{path}: not a fleet telemetry CSV "
                     f"(header must start with time_s)")
        missing = [c for c in cols if c not in header]
        if missing:
            sys.exit(f"{path}: no such column(s) {','.join(missing)}; "
                     f"have {','.join(header[1:])}")
        indices = [header.index(c) for c in cols]
        rows = []
        for line in handle:
            parts = line.strip().split(",")
            if len(parts) != len(header):
                continue
            rows.append(parts)
    return [(col, col, [(float(r[0]), float(r[i])) for r in rows])
            for col, i in zip(cols, indices)]


def nice_ticks(lo, hi, count=6):
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / count
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for step in (1, 2, 5, 10):
        if raw <= step * magnitude:
            step *= magnitude
            break
    first = int(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step / 2:
        if value >= lo - step / 2:
            ticks.append(value)
        value += step
    return ticks


def render(series, out_path, x_label):
    xs = [p[0] for _, _, pts in series for p in pts]
    ys = [p[1] for _, _, pts in series for p in pts]
    if not xs:
        sys.exit("no data points")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0

    plot_w = WIDTH - MARGIN["left"] - MARGIN["right"]
    plot_h = HEIGHT - MARGIN["top"] - MARGIN["bottom"]

    def sx(x):
        return MARGIN["left"] + (x - x_lo) / (x_hi - x_lo or 1) * plot_w

    def sy(y):
        return MARGIN["top"] + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
    ]
    # Axes and grid.
    for tick in nice_ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(f'<line x1="{MARGIN["left"]}" y1="{y:.1f}" '
                     f'x2="{MARGIN["left"] + plot_w}" y2="{y:.1f}" '
                     'stroke="#e0e0e0"/>')
        parts.append(f'<text x="{MARGIN["left"] - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{tick:g}</text>')
    for tick in nice_ticks(x_lo, x_hi):
        x = sx(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{MARGIN["top"]}" '
                     f'x2="{x:.1f}" y2="{MARGIN["top"] + plot_h}" '
                     'stroke="#f0f0f0"/>')
        parts.append(f'<text x="{x:.1f}" y="{MARGIN["top"] + plot_h + 18}" '
                     f'text-anchor="middle">{tick:g}</text>')
    parts.append(f'<text x="{MARGIN["left"] + plot_w / 2}" '
                 f'y="{HEIGHT - 10}" text-anchor="middle">{x_label}</text>')

    # Series.
    for i, (label, _, pts) in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        path = " ".join(f'{"M" if j == 0 else "L"}{sx(x):.1f},{sy(y):.1f}'
                        for j, (x, y) in enumerate(pts))
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" '
                     'stroke-width="1.5"/>')
        ly = MARGIN["top"] + 16 * i + 10
        lx = MARGIN["left"] + plot_w + 10
        parts.append(f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" y2="{ly}" '
                     f'stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{lx + 24}" y="{ly + 4}">{label}</text>')

    parts.append("</svg>")
    with open(out_path, "w") as handle:
        handle.write("\n".join(parts))
    print(f"wrote {out_path} ({len(series)} series)")


def main():
    args = sys.argv[1:]
    mode = "series"
    cols = FLEET_DEFAULT_COLS
    positional = []
    for arg in args:
        if arg == "--spans":
            mode = "spans"
        elif arg == "--fleet":
            mode = "fleet"
        elif arg.startswith("--cols="):
            cols = [c for c in arg[len("--cols="):].split(",") if c]
        elif arg.startswith("--"):
            sys.exit(__doc__)
        else:
            positional.append(arg)
    if len(positional) < 2:
        sys.exit(__doc__)
    out_path = positional[0]

    if mode == "spans":
        if len(positional) != 2:
            sys.exit(__doc__)
        render(read_spans(positional[1]), out_path, "virtual time [s]")
    elif mode == "fleet":
        if len(positional) != 2:
            sys.exit(__doc__)
        render(read_fleet(positional[1], cols), out_path, "time [s]")
    else:
        render([read_series(path) for path in positional[1:]], out_path,
               "time [s]")


if __name__ == "__main__":
    main()
