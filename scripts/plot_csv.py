#!/usr/bin/env python3
"""Renders bench_out/*.csv time series as a standalone SVG (no external
dependencies), e.g.:

  scripts/plot_csv.py fig8.svg \
      bench_out/compiling_detail_balloon_rss.csv \
      bench_out/compiling_detail_balloon_small.csv \
      bench_out/compiling_detail_balloon_cached.csv

Each CSV must have a `time_s,<name>` header as written by
metrics::TimeSeries::WriteCsv.
"""
import sys


PALETTE = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
           "#ff8ab7", "#a463f2", "#97bbf5"]
WIDTH, HEIGHT = 960, 480
MARGIN = {"left": 70, "right": 180, "top": 30, "bottom": 50}


def read_series(path):
    with open(path) as handle:
        header = handle.readline().strip().split(",")
        name = header[1] if len(header) > 1 else path
        points = []
        for line in handle:
            parts = line.strip().split(",")
            if len(parts) < 2:
                continue
            points.append((float(parts[0]), float(parts[1])))
    return path.rsplit("/", 1)[-1].removesuffix(".csv"), name, points


def nice_ticks(lo, hi, count=6):
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / count
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for step in (1, 2, 5, 10):
        if raw <= step * magnitude:
            step *= magnitude
            break
    first = int(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step / 2:
        if value >= lo - step / 2:
            ticks.append(value)
        value += step
    return ticks


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    out_path = sys.argv[1]
    series = [read_series(path) for path in sys.argv[2:]]

    xs = [p[0] for _, _, pts in series for p in pts]
    ys = [p[1] for _, _, pts in series for p in pts]
    if not xs:
        sys.exit("no data points")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0

    plot_w = WIDTH - MARGIN["left"] - MARGIN["right"]
    plot_h = HEIGHT - MARGIN["top"] - MARGIN["bottom"]

    def sx(x):
        return MARGIN["left"] + (x - x_lo) / (x_hi - x_lo or 1) * plot_w

    def sy(y):
        return MARGIN["top"] + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
    ]
    # Axes and grid.
    for tick in nice_ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(f'<line x1="{MARGIN["left"]}" y1="{y:.1f}" '
                     f'x2="{MARGIN["left"] + plot_w}" y2="{y:.1f}" '
                     'stroke="#e0e0e0"/>')
        parts.append(f'<text x="{MARGIN["left"] - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{tick:g}</text>')
    for tick in nice_ticks(x_lo, x_hi):
        x = sx(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{MARGIN["top"]}" '
                     f'x2="{x:.1f}" y2="{MARGIN["top"] + plot_h}" '
                     'stroke="#f0f0f0"/>')
        parts.append(f'<text x="{x:.1f}" y="{MARGIN["top"] + plot_h + 18}" '
                     f'text-anchor="middle">{tick:g}</text>')
    parts.append(f'<text x="{MARGIN["left"] + plot_w / 2}" '
                 f'y="{HEIGHT - 10}" text-anchor="middle">time [s]</text>')

    # Series.
    for i, (label, _, pts) in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        path = " ".join(f'{"M" if j == 0 else "L"}{sx(x):.1f},{sy(y):.1f}'
                        for j, (x, y) in enumerate(pts))
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" '
                     'stroke-width="1.5"/>')
        ly = MARGIN["top"] + 16 * i + 10
        lx = MARGIN["left"] + plot_w + 10
        parts.append(f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" y2="{ly}" '
                     f'stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{lx + 24}" y="{ly + 4}">{label}</text>')

    parts.append("</svg>")
    with open(out_path, "w") as handle:
        handle.write("\n".join(parts))
    print(f"wrote {out_path} ({len(series)} series)")


if __name__ == "__main__":
    main()
