#!/bin/sh
# Static gates for the lock-free core. Fails (non-zero) on:
#   1. headers under src/ without #pragma once,
#   2. atomic operations with an implicit (defaulted seq_cst) memory
#      order in the concurrency-critical directories — every load /
#      store / exchange / CAS / fetch_* there must spell out its
#      std::memory_order, so the ordering contract is visible at the
#      call site and survives the check::Atomic shim (which has no
#      defaulted-order overloads at all),
#   3. clang-tidy bugprone-* / concurrency-* findings (skipped with a
#      note when clang-tidy is not installed; CI installs it),
#   4. ha_trace_tool / ha_fleet_top --self-check (the offline analyzers
#      validate their own percentile / parsing / aggregation math),
#   5. docs consistency — every --flag mentioned in README / EXPERIMENTS /
#      DESIGN / ROADMAP must exist in the sources (or be a known external
#      tool's flag), and every "DESIGN.md §N.M" cross-reference must point
#      at a real DESIGN.md section heading,
#   6. per-field atomic ordering protocol — for every atomic field in the
#      gate-2 directories, acquire-side consumers (acquire loads, acquire
#      CAS failures, acquire RMWs) must be paired with at least one
#      release-side publisher (release/acq_rel/seq_cst store, exchange,
#      CAS success, or fetch_*) and vice versa: a one-sided protocol
#      means the order either buys nothing or protects nobody. Set
#      HA_LINT_GATE6_MUTANT=1 to also scan the committed mutant
#      (tests/lint/gate6_protocol_mutant.cc) and watch the gate fail —
#      proof the pairing check is live.
set -e
cd "$(dirname "$0")/.."

status=0

echo "-- gate 1: #pragma once in src/ headers"
missing=$(for h in $(find src -name '*.h'); do
  grep -L '^#pragma once$' "$h"
done)
if [ -n "$missing" ]; then
  echo "headers missing '#pragma once':"
  echo "$missing"
  status=1
fi

echo "-- gate 2: explicit memory orders in src/llfree src/core src/trace src/check src/hv src/balloon"
python3 - <<'EOF' || status=1
import re
import sys
from pathlib import Path

# Atomic member operations that default to seq_cst when the order is
# omitted. Matched as member calls (".op(" / "->op("); the argument list
# is extracted with paren matching so multi-line calls and nested calls
# are handled, then required to name a std::memory_order.
OPS = ("load", "store", "exchange", "compare_exchange_weak",
       "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_or",
       "fetch_and", "fetch_xor")

# The shim is the one place that legitimately forwards caller-provided
# orders held in plain parameters — it has no defaulted-order overloads,
# which is the property this gate enforces everywhere else.
EXEMPT = {Path("src/check/shim.h")}

call_re = re.compile(r"(?:\.|->)(%s)\s*\(" % "|".join(OPS))

failures = []
for root in ("src/llfree", "src/core", "src/trace", "src/check", "src/hv",
             "src/balloon"):
    for path in sorted(Path(root).rglob("*.cc")) + sorted(
            Path(root).rglob("*.h")):
        if path in EXEMPT:
            continue
        text = path.read_text()
        for m in call_re.finditer(text):
            op = m.group(1)
            # Extract the balanced argument list after the opening paren.
            depth, i = 1, m.end()
            while i < len(text) and depth:
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                i += 1
            args = text[m.end():i - 1]
            if "memory_order" not in args:
                line = text.count("\n", 0, m.start()) + 1
                failures.append(f"{path}:{line}: .{op}({args.strip()[:60]}"
                                f"...) has no explicit std::memory_order")

if failures:
    print("atomic operations with implicit seq_cst ordering:")
    print("\n".join(failures))
    sys.exit(1)
EOF

echo "-- gate 3: clang-tidy (bugprone-*, concurrency-*)"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset default >/dev/null
  files=$(find src -name '*.cc' ! -path 'src/workloads/*')
  # shellcheck disable=SC2086
  clang-tidy -p build --quiet $files || status=1
else
  echo "clang-tidy not installed; skipping (CI runs this gate)"
fi

echo "-- gate 4: ha_trace_tool / ha_fleet_top --self-check"
cmake --preset default >/dev/null
cmake --build build --target ha_trace_tool ha_fleet_top >/dev/null
./build/tools/ha_trace_tool --self-check || status=1
./build/tools/ha_fleet_top --self-check || status=1

echo "-- gate 5: docs consistency (flags, DESIGN.md section references, orphan sections)"
python3 - <<'EOF' || status=1
import os
import re
import sys
from pathlib import Path

DOCS = ["README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md",
        "docs/INDEX.md"]

# Flags owned by external tools that the docs legitimately mention but
# no repo source defines.
EXTERNAL_FLAGS = {
    "--build", "--preset", "--test-dir", "--target", "--parallel",
    "--output-on-failure", "--gtest_filter", "--version",
}

flag_re = re.compile(r"--[a-z][a-z0-9-]*")

# Every flag string that appears in a source file counts as defined —
# bench/tool argv parsers, scripts, and example binaries.
defined = set(EXTERNAL_FLAGS)
for root, patterns in (("bench", ["*.cc", "*.h"]), ("tools", ["*.cc"]),
                       ("examples", ["*.cpp", "*.cc"]),
                       ("scripts", ["*.sh", "*.py"])):
    for pattern in patterns:
        for path in Path(root).rglob(pattern):
            defined.update(flag_re.findall(path.read_text()))

# DESIGN.md section numbers: "## 4. Key design decisions",
# "### 4.2b Hotness hints", ...
sections = set()
# Numbered *subsections* ("4.2b", not the narrative "## 1." chapters):
# each must be cited by at least one source file, or it has gone orphan.
subsections = {}  # number -> "doc:line: title"
heading_re = re.compile(r"#{2,}\s+(\d+(?:\.\d+)*[a-z]?)\.?\s+(.*)")


def collect_headings(doc):
    for line_number, line in enumerate(
            Path(doc).read_text().splitlines(), 1):
        m = heading_re.match(line)
        if not m:
            continue
        number = m.group(1)
        sections.add(number)
        if "." in number:
            subsections[number] = f"{doc}:{line_number}: {m.group(2)}"
        # §4.2 is a valid way to cite §4.2b-style subsections' parent.
        while "." in number:
            number = number.rsplit(".", 1)[0]
            sections.add(number)


collect_headings("DESIGN.md")
# Seeded mutant for CI self-test: a DESIGN-style doc whose subsection no
# source references. The orphan check below must fail on it.
if os.environ.get("HA_LINT_GATE5_MUTANT") == "1":
    collect_headings("tests/lint/gate5_orphan_mutant.md")

ref_re = re.compile(r"DESIGN\.md\s+§\s*(\d+(?:\.\d+)*[a-z]?)")

failures = []
for doc in DOCS:
    text = Path(doc).read_text()
    for line_number, line in enumerate(text.splitlines(), 1):
        for flag in flag_re.findall(line):
            if flag not in defined:
                failures.append(f"{doc}:{line_number}: {flag} is not "
                                f"defined by any bench/tool/script")
        for ref in ref_re.findall(line):
            if ref not in sections:
                failures.append(f"{doc}:{line_number}: DESIGN.md §{ref} "
                                f"does not match any DESIGN.md heading")

# Orphan-section check: every numbered DESIGN.md subsection must be
# cited (as "§<num>") by at least one source file, or the design text
# documents nothing the tree can be held to. The token regex is greedy,
# so a "§4.10" citation can never satisfy §4.1. Bare paper-section
# citations ("the paper's §4.2") can coincide with a DESIGN number —
# acceptable: the gate hunts sections NO source mentions at all.
cite_re = re.compile(r"§\s*(\d+\.(?:\d+\.?)*[a-z]?)")
cited = set()
for root, patterns in (("src", ["*.h", "*.cc"]), ("bench", ["*.h", "*.cc"]),
                       ("tools", ["*.cc"]), ("tests", ["*.h", "*.cc"]),
                       ("examples", ["*.cpp", "*.cc"]),
                       ("scripts", ["*.sh", "*.py"])):
    for pattern in patterns:
        for path in Path(root).rglob(pattern):
            cited.update(c.rstrip(".") for c in
                         cite_re.findall(path.read_text()))
for number, where in sorted(subsections.items()):
    if number not in cited:
        failures.append(f"{where.split(':', 1)[0]}: §{number} "
                        f"({where.split(': ', 1)[1]}) is referenced by no "
                        f"source file — orphaned design section")

if failures:
    print("docs drifted from the sources:")
    print("\n".join(failures))
    sys.exit(1)
EOF

echo "-- gate 6: per-field atomic ordering protocol (publisher/consumer pairing)"
python3 - <<'EOF' || status=1
import os
import re
import sys
from pathlib import Path

# Builds a per-field ordering-protocol table from every atomic member
# operation in the gate-2 directories and checks that the release and
# acquire sides pair up. An RMW with acq_rel (or seq_cst) counts as both
# publisher and consumer, so CAS-transaction fields satisfy the rule by
# construction; the gate exists for split protocols (store-release /
# load-acquire) where a downgrade on either side silently breaks the
# other.
OPS = ("load", "store", "exchange", "compare_exchange_weak",
       "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_or",
       "fetch_and", "fetch_xor")
RELEASE = {"memory_order_release", "memory_order_acq_rel",
           "memory_order_seq_cst"}
ACQUIRE = {"memory_order_acquire", "memory_order_consume",
           "memory_order_acq_rel", "memory_order_seq_cst"}

# The shim forwards caller-provided orders (exempt from gate 2 for the
# same reason); its internal std::atomic member is not a protocol field.
EXEMPT_FILES = {Path("src/check/shim.h")}

# Lexical aliases for one location reached under two names: the global
# bit-field array is mutated through the AreaBits view (`words_`,
# src/llfree/bitfield.h) but read by the invariants oracle through the
# SharedState accessor (`bitfield()`). Extend this table deliberately —
# every entry is a pairing the lexical scan cannot see on its own.
ALIASES = {"bitfield": "words"}

call_re = re.compile(r"(?:\.|->)(%s)\s*\(" % "|".join(OPS))


def field_before(text, pos):
    """The member name the op is invoked on: the identifier before the
    ./-> accessor, skipping one trailing [index] or (call) group."""
    i = pos
    while i > 0 and text[i - 1] in ")]":
        close = text[i - 1]
        opener = "(" if close == ")" else "["
        depth = 0
        while i > 0:
            i -= 1
            if text[i] == close:
                depth += 1
            elif text[i] == opener:
                depth -= 1
                if depth == 0:
                    break
    j = i
    while j > 0 and (text[j - 1].isalnum() or text[j - 1] == "_"):
        j -= 1
    return text[j:i]


publishers = {}  # field -> [site, ...]
consumers = {}
sites = {}       # field -> every op site, for the report

roots = ["src/llfree", "src/core", "src/trace", "src/check", "src/hv",
         "src/balloon"]
files = []
for root in roots:
    files += sorted(Path(root).rglob("*.cc")) + sorted(
        Path(root).rglob("*.h"))
if os.environ.get("HA_LINT_GATE6_MUTANT") == "1":
    files.append(Path("tests/lint/gate6_protocol_mutant.cc"))

for path in files:
    if path in EXEMPT_FILES:
        continue
    text = path.read_text()
    for m in call_re.finditer(text):
        op = m.group(1)
        depth, i = 1, m.end()
        while i < len(text) and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        args = text[m.end():i - 1]
        orders = re.findall(r"memory_order_\w+", args)
        if not orders:
            continue  # forwarded parameter order (gate 2 polices this)
        field = field_before(text, m.start())
        if not field:
            continue
        # Repo convention: member `bitfield_` and accessor `bitfield()`
        # name the same location — aggregate them as one protocol field.
        field = field.rstrip("_")
        field = ALIASES.get(field, field)
        line = text.count("\n", 0, m.start()) + 1
        site = f"{path}:{line}: .{op}({', '.join(orders)})"
        sites.setdefault(field, []).append(site)
        if op == "load":
            if orders[0] in ACQUIRE:
                consumers.setdefault(field, []).append(site)
        elif op == "store":
            if orders[0] in RELEASE:
                publishers.setdefault(field, []).append(site)
        elif op.startswith("compare_exchange"):
            if orders[0] in RELEASE:
                publishers.setdefault(field, []).append(site)
            if orders[0] in ACQUIRE:
                consumers.setdefault(field, []).append(site)
            if len(orders) > 1 and orders[1] in ACQUIRE:
                consumers.setdefault(field, []).append(site)
        else:  # exchange / fetch_*
            if orders[0] in RELEASE:
                publishers.setdefault(field, []).append(site)
            if orders[0] in ACQUIRE:
                consumers.setdefault(field, []).append(site)

failures = []
for field in sorted(sites):
    has_pub = field in publishers
    has_con = field in consumers
    if has_con and not has_pub:
        failures.append(
            f"field '{field}' has acquire-side consumers but no "
            f"release/acq_rel/seq_cst publisher — the acquire orders "
            f"nothing:\n    " + "\n    ".join(consumers[field]))
    elif has_pub and not has_con:
        failures.append(
            f"field '{field}' has release-side publishers but no "
            f"acquire-side consumer — nobody orders against the "
            f"release:\n    " + "\n    ".join(publishers[field]))

if failures:
    print("one-sided atomic ordering protocols:")
    print("\n".join(failures))
    sys.exit(1)
EOF

if [ "$status" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
