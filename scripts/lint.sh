#!/bin/sh
# Static gates for the lock-free core. Fails (non-zero) on:
#   1. headers under src/ without #pragma once,
#   2. atomic operations with an implicit (defaulted seq_cst) memory
#      order in the concurrency-critical directories — every load /
#      store / exchange / CAS / fetch_* there must spell out its
#      std::memory_order, so the ordering contract is visible at the
#      call site and survives the check::Atomic shim (which has no
#      defaulted-order overloads at all),
#   3. clang-tidy bugprone-* / concurrency-* findings (skipped with a
#      note when clang-tidy is not installed; CI installs it),
#   4. ha_trace_tool --self-check (the offline trace analyzer validates
#      its own percentile / parsing / attribution math),
#   5. docs consistency — every --flag mentioned in README / EXPERIMENTS /
#      DESIGN / ROADMAP must exist in the sources (or be a known external
#      tool's flag), and every "DESIGN.md §N.M" cross-reference must point
#      at a real DESIGN.md section heading.
set -e
cd "$(dirname "$0")/.."

status=0

echo "-- gate 1: #pragma once in src/ headers"
missing=$(for h in $(find src -name '*.h'); do
  grep -L '^#pragma once$' "$h"
done)
if [ -n "$missing" ]; then
  echo "headers missing '#pragma once':"
  echo "$missing"
  status=1
fi

echo "-- gate 2: explicit memory orders in src/llfree src/core src/trace src/check"
python3 - <<'EOF' || status=1
import re
import sys
from pathlib import Path

# Atomic member operations that default to seq_cst when the order is
# omitted. Matched as member calls (".op(" / "->op("); the argument list
# is extracted with paren matching so multi-line calls and nested calls
# are handled, then required to name a std::memory_order.
OPS = ("load", "store", "exchange", "compare_exchange_weak",
       "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_or",
       "fetch_and", "fetch_xor")

# The shim is the one place that legitimately forwards caller-provided
# orders held in plain parameters — it has no defaulted-order overloads,
# which is the property this gate enforces everywhere else.
EXEMPT = {Path("src/check/shim.h")}

call_re = re.compile(r"(?:\.|->)(%s)\s*\(" % "|".join(OPS))

failures = []
for root in ("src/llfree", "src/core", "src/trace", "src/check"):
    for path in sorted(Path(root).rglob("*.cc")) + sorted(
            Path(root).rglob("*.h")):
        if path in EXEMPT:
            continue
        text = path.read_text()
        for m in call_re.finditer(text):
            op = m.group(1)
            # Extract the balanced argument list after the opening paren.
            depth, i = 1, m.end()
            while i < len(text) and depth:
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                i += 1
            args = text[m.end():i - 1]
            if "memory_order" not in args:
                line = text.count("\n", 0, m.start()) + 1
                failures.append(f"{path}:{line}: .{op}({args.strip()[:60]}"
                                f"...) has no explicit std::memory_order")

if failures:
    print("atomic operations with implicit seq_cst ordering:")
    print("\n".join(failures))
    sys.exit(1)
EOF

echo "-- gate 3: clang-tidy (bugprone-*, concurrency-*)"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset default >/dev/null
  files=$(find src -name '*.cc' ! -path 'src/workloads/*')
  # shellcheck disable=SC2086
  clang-tidy -p build --quiet $files || status=1
else
  echo "clang-tidy not installed; skipping (CI runs this gate)"
fi

echo "-- gate 4: ha_trace_tool --self-check"
cmake --preset default >/dev/null
cmake --build build --target ha_trace_tool >/dev/null
./build/tools/ha_trace_tool --self-check || status=1

echo "-- gate 5: docs consistency (flags and DESIGN.md section references)"
python3 - <<'EOF' || status=1
import re
import sys
from pathlib import Path

DOCS = ["README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md"]

# Flags owned by external tools that the docs legitimately mention but
# no repo source defines.
EXTERNAL_FLAGS = {
    "--build", "--preset", "--test-dir", "--target", "--parallel",
    "--output-on-failure", "--gtest_filter", "--version",
}

flag_re = re.compile(r"--[a-z][a-z0-9-]*")

# Every flag string that appears in a source file counts as defined —
# bench/tool argv parsers, scripts, and example binaries.
defined = set(EXTERNAL_FLAGS)
for root, patterns in (("bench", ["*.cc", "*.h"]), ("tools", ["*.cc"]),
                       ("examples", ["*.cpp", "*.cc"]),
                       ("scripts", ["*.sh", "*.py"])):
    for pattern in patterns:
        for path in Path(root).rglob(pattern):
            defined.update(flag_re.findall(path.read_text()))

# DESIGN.md section numbers: "## 4. Key design decisions",
# "### 4.2b Hotness hints", ...
sections = set()
for line in Path("DESIGN.md").read_text().splitlines():
    m = re.match(r"#{2,}\s+(\d+(?:\.\d+)*[a-z]?)\.?\s", line)
    if m:
        number = m.group(1)
        sections.add(number)
        # §4.2 is a valid way to cite §4.2b-style subsections' parent.
        while "." in number:
            number = number.rsplit(".", 1)[0]
            sections.add(number)

ref_re = re.compile(r"DESIGN\.md\s+§\s*(\d+(?:\.\d+)*[a-z]?)")

failures = []
for doc in DOCS:
    text = Path(doc).read_text()
    for line_number, line in enumerate(text.splitlines(), 1):
        for flag in flag_re.findall(line):
            if flag not in defined:
                failures.append(f"{doc}:{line_number}: {flag} is not "
                                f"defined by any bench/tool/script")
        for ref in ref_re.findall(line):
            if ref not in sections:
                failures.append(f"{doc}:{line_number}: DESIGN.md §{ref} "
                                f"does not match any DESIGN.md heading")

if failures:
    print("docs drifted from the sources:")
    print("\n".join(failures))
    sys.exit(1)
EOF

if [ "$status" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
