#!/usr/bin/env python3
"""Perf-regression gate: compares a bench_runner JSON against a baseline.

    perf_gate.py BASELINE.json CURRENT.json [--threshold=0.25] [--wall]

Fails (exit 1) when a guarded metric regresses by more than the
threshold (default 25%). Two classes of metric:

  * deterministic — virtual-time results (multivm footprint/peak,
    attribution totals and per-layer shares) and op counts. These are
    identical across machines, so any drift is a real behavior change
    and is always gated.
  * wall-clock — ops_per_sec, wall_ms. Noisy on shared CI runners, so
    they are only gated under --wall (for dedicated perf hardware);
    otherwise they are reported informationally.

Sections or keys missing from the BASELINE are skipped with a note —
that is how a new schema revision lands: the first run after adding a
section has nothing to compare against (e.g. BENCH_PR3.json predates
the `attribution` section). Keys missing from CURRENT fail: a metric
that existed must not silently disappear.

Stdlib-only; runs in CI containers with no extra packages.
"""
import json
import sys

# metric path -> (direction, kind). direction "higher"/"lower" is the
# good direction; kind "det" is always gated, "wall" only under --wall.
METRICS = {
    ("benches", "llfree_alloc_free", "ops"): ("higher", "det"),
    ("benches", "llfree_alloc_free", "ops_per_sec"): ("higher", "wall"),
    ("benches", "host_reserve_release", "ops"): ("higher", "det"),
    ("benches", "host_reserve_release", "ops_per_sec"): ("higher", "wall"),
    ("benches", "multivm", "footprint_gib_min"): ("lower", "det"),
    ("benches", "multivm", "peak_gib"): ("lower", "det"),
    ("benches", "multivm", "wall_ms_single"): ("lower", "wall"),
    ("benches", "multivm", "wall_ms_parallel"): ("lower", "wall"),
    ("benches", "attribution", "inflate", "total_vns"): ("lower", "det"),
    ("benches", "attribution", "deflate", "total_vns"): ("lower", "det"),
    ("benches", "attribution", "trace_overhead", "overhead_pct"):
        ("lower", "wall"),
}


def fail(message):
    print(f"perf_gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def lookup(doc, path):
    """Returns the value at `path` or None if any component is missing."""
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = [a for a in sys.argv[1:] if a.startswith("--")]
    if len(args) != 2:
        fail("usage: perf_gate.py BASELINE.json CURRENT.json "
             "[--threshold=0.25] [--wall]")
    threshold = 0.25
    gate_wall = False
    for flag in flags:
        if flag.startswith("--threshold="):
            threshold = float(flag.split("=", 1)[1])
        elif flag == "--wall":
            gate_wall = True
        else:
            fail(f"unknown flag {flag}")

    baseline = load(args[0])
    current = load(args[1])
    if current.get("smoke") and not baseline.get("smoke"):
        print("perf_gate: note: comparing a --smoke run against a full "
              "baseline; only scale-independent metrics are meaningful")

    failures = []
    for path, (direction, kind) in sorted(METRICS.items()):
        name = ".".join(path)
        before = lookup(baseline, path)
        after = lookup(current, path)
        if before is None:
            print(f"perf_gate: skip  {name}: not in baseline")
            continue
        if after is None:
            failures.append(f"{name}: present in baseline but missing "
                            f"from current")
            continue
        if before == 0:
            print(f"perf_gate: skip  {name}: baseline is zero")
            continue
        # Regression = movement in the bad direction, as a fraction of
        # the baseline.
        change = (after - before) / before
        regression = -change if direction == "higher" else change
        gated = kind == "det" or gate_wall
        status = "ok   "
        if regression > threshold:
            if gated:
                status = "FAIL "
                failures.append(
                    f"{name}: {before} -> {after} "
                    f"({regression:+.1%} regression, threshold "
                    f"{threshold:.0%})")
            else:
                status = "info "
        print(f"perf_gate: {status} {name}: {before} -> {after} "
              f"({change:+.1%}{'' if gated else ', wall-clock, not gated'})")

    # Attribution layer shares: a layer silently absorbing a much larger
    # share of the request is a perf smell even when totals move little.
    for phase in ("inflate", "deflate"):
        base_layers = lookup(baseline, ("benches", "attribution", phase,
                                        "layers"))
        cur_layers = lookup(current, ("benches", "attribution", phase,
                                      "layers"))
        if base_layers is None or cur_layers is None:
            if base_layers is None:
                print(f"perf_gate: skip  attribution.{phase}.layers: "
                      f"not in baseline")
            continue
        for layer, entry in sorted(base_layers.items()):
            before = entry.get("share", 0.0)
            after = cur_layers.get(layer, {}).get("share", 0.0)
            delta = after - before
            status = "ok   "
            if abs(delta) > threshold:
                status = "FAIL "
                failures.append(
                    f"attribution.{phase}.layers.{layer}.share: "
                    f"{before} -> {after} (moved {delta:+.2f}, threshold "
                    f"{threshold:.2f})")
            print(f"perf_gate: {status} attribution.{phase}.layers."
                  f"{layer}.share: {before} -> {after}")

    if failures:
        print(f"perf_gate: FAILED ({len(failures)} regression(s) vs "
              f"{args[0]}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"perf_gate: OK ({args[1]} vs {args[0]}, "
          f"threshold {threshold:.0%})")


if __name__ == "__main__":
    main()
