#!/usr/bin/env python3
"""Perf-regression gate: compares a bench_runner JSON against baselines.

    perf_gate.py BASELINE.json [BASELINE2.json ...] CURRENT.json \\
        [--threshold=0.25] [--wall]

All positional arguments but the last are committed baselines in
chronological order; the last is the current run. With more than one
baseline a trendline across the whole sequence is printed for every
metric, so a slow drift that stays under the per-PR threshold is still
visible. The regression gate itself compares CURRENT against the LATEST
baseline only.

Fails (exit 1) when a guarded metric regresses by more than the
threshold (default 25%), or a FLOOR is not met. Two classes of relative
metric:

  * deterministic — virtual-time results (multivm footprint/peak,
    attribution totals and per-layer shares) and op counts. These are
    identical across machines, so any drift is a real behavior change
    and is always gated.
  * wall-clock — ops_per_sec, wall_ms. Noisy on shared CI runners, so
    they are only gated under --wall (for dedicated perf hardware);
    otherwise they are reported informationally.

FLOORS are absolute requirements on CURRENT alone, for ratio metrics
whose two sides run in-process on the same host (machine speed cancels):
the batched LLFree path must stay at least 2x the single-frame path.

Sections or keys missing from a BASELINE are skipped with a note —
that is how a new schema revision lands: the first run after adding a
section has nothing to compare against (e.g. BENCH_PR3.json predates
the `attribution` section). Keys missing from CURRENT fail: a metric
that existed must not silently disappear.

Stdlib-only; runs in CI containers with no extra packages.
"""
import json
import sys

# metric path -> (direction, kind). direction "higher"/"lower" is the
# good direction; kind "det" is always gated, "wall" only under --wall.
METRICS = {
    ("benches", "llfree_alloc_free", "ops"): ("higher", "det"),
    ("benches", "llfree_alloc_free", "ops_per_sec"): ("higher", "wall"),
    ("benches", "llfree_batch_alloc_free", "ops"): ("higher", "det"),
    ("benches", "llfree_batch_alloc_free", "ops_per_sec"):
        ("higher", "wall"),
    ("benches", "host_reserve_release", "ops"): ("higher", "det"),
    ("benches", "host_reserve_release", "ops_per_sec"): ("higher", "wall"),
    ("benches", "host_reserve_release", "rebalances"): ("lower", "wall"),
    ("benches", "multivm", "footprint_gib_min"): ("lower", "det"),
    ("benches", "multivm", "peak_gib"): ("lower", "det"),
    ("benches", "multivm", "wall_ms_single"): ("lower", "wall"),
    ("benches", "multivm", "wall_ms_parallel"): ("lower", "wall"),
    ("benches", "attribution", "inflate", "total_vns"): ("lower", "det"),
    ("benches", "attribution", "deflate", "total_vns"): ("lower", "det"),
    ("benches", "attribution", "trace_overhead", "overhead_pct"):
        ("lower", "wall"),
    # Fleet SLOs (PR8): virtual-time results of the deterministic
    # 1024-VM scenario, so any drift is a real behavior change.
    ("benches", "fleet", "p99_resize_ms"): ("lower", "det"),
    ("benches", "fleet", "spike", "time_to_reclaim_ms"): ("lower", "det"),
    ("benches", "fleet", "footprint_gib_min"): ("lower", "det"),
    ("benches", "fleet", "peak_gib"): ("lower", "det"),
    ("benches", "fleet", "wall_ms"): ("lower", "wall"),
    # Fleet telemetry (PR9): the pipeline's wall cost relative to the
    # same scenario with sampling off. The ratio is in-process on one
    # host, but both sides are short wall-clock runs, so the relative
    # trend stays informational; the hard bound is the CEILING below.
    ("benches", "telemetry", "telemetry_overhead_pct"): ("lower", "wall"),
    # Huge-frame fast path (PR10): virtual-time results of the
    # deterministic churn+shrink scenario. The compacted run reclaiming
    # less, or either variant's reclaim share dropping, is a real
    # behavior change.
    ("benches", "huge_frame", "with_compaction", "reclaimed_mib"):
        ("higher", "det"),
    ("benches", "huge_frame", "no_compaction", "reclaimed_mib"):
        ("higher", "det"),
    ("benches", "huge_frame", "share"): ("higher", "det"),
    ("benches", "huge_frame", "flush_savings"): ("higher", "det"),
}

# metric path -> minimum value required of CURRENT (always gated when the
# metric is present; the schema checker guards presence per revision).
FLOORS = {
    ("benches", "llfree_batch_alloc_free", "speedup_vs_single"): 2.0,
    # The fleet policy loop must actually exercise the resize path.
    ("benches", "fleet", "resizes"): 1,
    # Huge-frame reclaim share (PR10 acceptance bound): at least 80% of
    # the huge frames HyperAlloc reclaims must avoid per-4K EPT work —
    # in BOTH churn variants (`share` is the min of the two).
    ("benches", "huge_frame", "share"): 0.8,
    # Coalesced 2M invalidation must actually save flush entries vs
    # per-4K invalidation of the same reclaim.
    ("benches", "huge_frame", "flush_savings"): 0.9,
    # The compaction daemon must migrate stragglers, not no-op.
    ("benches", "huge_frame", "compaction_migrations"): 1,
}

# metric path -> maximum value allowed of CURRENT (same in-process-ratio
# rationale as FLOORS, for metrics where smaller is required).
CEILINGS = {
    # Barrier-sampled telemetry must stay cheap enough to leave on:
    # <5% of bench_fleet wall time (the PR9 acceptance bound).
    ("benches", "telemetry", "telemetry_overhead_pct"): 5.0,
}


def fail(message):
    print(f"perf_gate: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def lookup(doc, path):
    """Returns the value at `path` or None if any component is missing."""
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = [a for a in sys.argv[1:] if a.startswith("--")]
    if len(args) < 2:
        fail("usage: perf_gate.py BASELINE.json [BASELINE2.json ...] "
             "CURRENT.json [--threshold=0.25] [--wall]")
    threshold = 0.25
    gate_wall = False
    for flag in flags:
        if flag.startswith("--threshold="):
            threshold = float(flag.split("=", 1)[1])
        elif flag == "--wall":
            gate_wall = True
        else:
            fail(f"unknown flag {flag}")

    docs = [load(a) for a in args]
    baseline, current = docs[-2], docs[-1]
    if current.get("smoke") and not baseline.get("smoke"):
        print("perf_gate: note: comparing a --smoke run against a full "
              "baseline; only scale-independent metrics are meaningful")

    # Trendline across the whole committed-baseline sequence: visible
    # drift detection; the gate below is CURRENT vs the latest baseline.
    if len(docs) > 2:
        for path in sorted(METRICS):
            values = [lookup(doc, path) for doc in docs]
            if all(v is None for v in values[:-1]):
                continue
            rendered = " -> ".join(
                "n/a" if v is None else f"{v:g}" for v in values)
            print(f"perf_gate: trend {'.'.join(path)}: {rendered}")

    failures = []
    for path, (direction, kind) in sorted(METRICS.items()):
        name = ".".join(path)
        before = lookup(baseline, path)
        after = lookup(current, path)
        if before is None:
            print(f"perf_gate: skip  {name}: not in baseline")
            continue
        if after is None:
            failures.append(f"{name}: present in baseline but missing "
                            f"from current")
            continue
        if before == 0:
            print(f"perf_gate: skip  {name}: baseline is zero")
            continue
        # Regression = movement in the bad direction, as a fraction of
        # the baseline.
        change = (after - before) / before
        regression = -change if direction == "higher" else change
        gated = kind == "det" or gate_wall
        status = "ok   "
        if regression > threshold:
            if gated:
                status = "FAIL "
                failures.append(
                    f"{name}: {before} -> {after} "
                    f"({regression:+.1%} regression, threshold "
                    f"{threshold:.0%})")
            else:
                status = "info "
        print(f"perf_gate: {status} {name}: {before} -> {after} "
              f"({change:+.1%}{'' if gated else ', wall-clock, not gated'})")

    # Attribution layer shares: a layer silently absorbing a much larger
    # share of the request is a perf smell even when totals move little.
    for phase in ("inflate", "deflate"):
        base_layers = lookup(baseline, ("benches", "attribution", phase,
                                        "layers"))
        cur_layers = lookup(current, ("benches", "attribution", phase,
                                      "layers"))
        if base_layers is None or cur_layers is None:
            if base_layers is None:
                print(f"perf_gate: skip  attribution.{phase}.layers: "
                      f"not in baseline")
            continue
        for layer, entry in sorted(base_layers.items()):
            before = entry.get("share", 0.0)
            after = cur_layers.get(layer, {}).get("share", 0.0)
            delta = after - before
            status = "ok   "
            if abs(delta) > threshold:
                status = "FAIL "
                failures.append(
                    f"attribution.{phase}.layers.{layer}.share: "
                    f"{before} -> {after} (moved {delta:+.2f}, threshold "
                    f"{threshold:.2f})")
            print(f"perf_gate: {status} attribution.{phase}.layers."
                  f"{layer}.share: {before} -> {after}")

    # Absolute floors on the current run (in-process ratios, so they hold
    # regardless of machine speed).
    for path, floor in sorted(FLOORS.items()):
        name = ".".join(path)
        value = lookup(current, path)
        if value is None:
            print(f"perf_gate: skip  {name}: not in current (pre-floor "
                  f"schema)")
            continue
        if value < floor:
            print(f"perf_gate: FAIL  {name}: {value} < floor {floor}")
            failures.append(f"{name}: {value} below floor {floor}")
        else:
            print(f"perf_gate: ok    {name}: {value} >= floor {floor}")

    for path, ceiling in sorted(CEILINGS.items()):
        name = ".".join(path)
        value = lookup(current, path)
        if value is None:
            print(f"perf_gate: skip  {name}: not in current (pre-ceiling "
                  f"schema)")
            continue
        if current.get("smoke"):
            # Smoke scenarios finish in tens of milliseconds; an on/off
            # wall ratio at that scale is scheduler noise, not a result.
            print(f"perf_gate: skip  {name}: smoke run (wall ratio is "
                  f"noise at smoke scale)")
            continue
        if value > ceiling:
            print(f"perf_gate: FAIL  {name}: {value} > ceiling {ceiling}")
            failures.append(f"{name}: {value} above ceiling {ceiling}")
        else:
            print(f"perf_gate: ok    {name}: {value} <= ceiling {ceiling}")

    if failures:
        print(f"perf_gate: FAILED ({len(failures)} regression(s) vs "
              f"{args[-2]}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"perf_gate: OK ({args[-1]} vs {args[-2]}, "
          f"threshold {threshold:.0%})")


if __name__ == "__main__":
    main()
