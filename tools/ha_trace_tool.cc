// ha_trace_tool — offline analysis of span traces (the .spans.csv files
// written by bench binaries via --trace-out, format: src/trace/export.h
// WriteSpansCsv).
//
//   ha_trace_tool SPANS.csv          per-layer latency breakdown,
//                                    p50/p95/p99 per span name, and the
//                                    critical path of the slowest request
//   ha_trace_tool --diff A.csv B.csv per-layer attribution diff (B vs A)
//   ha_trace_tool --self-check       internal consistency checks on
//                                    synthetic data (no input; run by
//                                    scripts/lint.sh)
//
// All statistics are over *virtual* nanoseconds — deterministic across
// runs and machines; the wall columns are carried only for skew checks.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint32_t vm = 0;
  std::string layer;
  std::string name;
  uint64_t begin_vns = 0;
  uint64_t end_vns = 0;
  uint64_t charge_ns = 0;
  uint64_t frames = 0;
  uint64_t huge_frames = 0;
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t begin_wall_ns = 0;
  uint64_t end_wall_ns = 0;

  uint64_t virtual_ns() const { return end_vns - begin_vns; }
};

// Accepts the current 15-column format (with the §4.14 huge_frames
// column), the 14-column pre-huge-frame format, and the 12-column
// pre-fault-injection format, so old traces stay analyzable.
bool ParseRow(const std::string& line, Row* row) {
  std::vector<std::string> fields;
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) {
    fields.push_back(field);
  }
  if (fields.size() != 12 && fields.size() != 14 && fields.size() != 15) {
    return false;
  }
  try {
    row->trace_id = std::stoull(fields[0]);
    row->span_id = std::stoull(fields[1]);
    row->parent_id = std::stoull(fields[2]);
    row->vm = static_cast<uint32_t>(std::stoul(fields[3]));
    row->layer = fields[4];
    row->name = fields[5];
    row->begin_vns = std::stoull(fields[6]);
    row->end_vns = std::stoull(fields[7]);
    row->charge_ns = std::stoull(fields[8]);
    row->frames = std::stoull(fields[9]);
    size_t next = 10;
    if (fields.size() == 15) {
      row->huge_frames = std::stoull(fields[10]);
      row->faults = std::stoull(fields[11]);
      row->retries = std::stoull(fields[12]);
      next = 13;
    } else if (fields.size() == 14) {
      row->faults = std::stoull(fields[10]);
      row->retries = std::stoull(fields[11]);
      next = 12;
    }
    row->begin_wall_ns = std::stoull(fields[next]);
    row->end_wall_ns = std::stoull(fields[next + 1]);
  } catch (...) {
    return false;
  }
  return true;
}

bool Load(const std::string& path, std::vector<Row>* rows) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "ha_trace_tool: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  bool header = true;
  while (std::getline(file, line)) {
    if (header) {  // "trace_id,span_id,..."
      header = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    Row row;
    if (!ParseRow(line, &row)) {
      std::fprintf(stderr, "ha_trace_tool: bad row: %s\n", line.c_str());
      return false;
    }
    rows->push_back(row);
  }
  return true;
}

// Layers the span pipeline can emit (src/trace/span.cc Name(Layer)).
// "telemetry" rows are zero-length event markers (alerts, flight dumps)
// from the fleet telemetry pipeline, not timed spans — they are split
// out of the latency/critical-path analysis and reported separately.
bool KnownSpanLayer(const std::string& layer) {
  static const char* const kLayers[] = {"request", "monitor", "backend",
                                        "guest",   "llfree",  "ept",
                                        "iommu",   "hostpool"};
  for (const char* known : kLayers) {
    if (layer == known) {
      return true;
    }
  }
  return false;
}

// Splits `rows` into timed spans and telemetry event markers. Rows with
// a layer this tool does not know are kept in the span analysis (their
// timing columns are still valid) but warned about ONCE with a final
// count, instead of being silently folded in.
void SplitTelemetry(const std::vector<Row>& rows, std::vector<Row>* spans,
                    std::vector<Row>* events, uint64_t* unknown) {
  bool warned = false;
  for (const Row& row : rows) {
    if (row.layer == "telemetry") {
      events->push_back(row);
      continue;
    }
    if (!KnownSpanLayer(row.layer)) {
      ++*unknown;
      if (!warned) {
        std::fprintf(stderr,
                     "ha_trace_tool: warning: unknown span layer '%s' "
                     "(keeping in span analysis; counting further "
                     "unknowns silently)\n",
                     row.layer.c_str());
        warned = true;
      }
    }
    spans->push_back(row);
  }
}

void PrintTelemetryEvents(const std::vector<Row>& events, uint64_t unknown) {
  if (!events.empty()) {
    std::map<std::string, uint64_t> by_name;
    for (const Row& row : events) {
      ++by_name[row.name];
    }
    std::printf("Telemetry events (markers, excluded from latency stats):\n");
    for (const auto& [name, count] : by_name) {
      std::printf("  %-26s %10" PRIu64 "\n", name.c_str(), count);
    }
    std::printf("\n");
  }
  if (unknown > 0) {
    std::printf("Unknown-layer spans kept in analysis: %" PRIu64 "\n\n",
                unknown);
  }
}

// Nearest-rank percentile over a sorted sample (p in [0,100]).
uint64_t Percentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const size_t rank = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size()) + 0.999999);
  const size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

std::map<std::string, uint64_t> LayerChargeNs(const std::vector<Row>& rows) {
  std::map<std::string, uint64_t> by_layer;
  for (const Row& row : rows) {
    by_layer[row.layer] += row.charge_ns;
  }
  return by_layer;
}

void PrintLayerBreakdown(const std::vector<Row>& rows) {
  const std::map<std::string, uint64_t> by_layer = LayerChargeNs(rows);
  uint64_t total = 0;
  for (const auto& [layer, ns] : by_layer) {
    total += ns;
  }
  std::printf("Per-layer attribution (charged virtual ns):\n");
  std::printf("  %-10s %15s %8s\n", "layer", "charge_ns", "share");
  for (const auto& [layer, ns] : by_layer) {
    std::printf("  %-10s %15" PRIu64 " %7.1f%%\n", layer.c_str(), ns,
                total > 0 ? 100.0 * static_cast<double>(ns) /
                                static_cast<double>(total)
                          : 0.0);
  }
  std::printf("  %-10s %15" PRIu64 "\n\n", "total", total);
}

void PrintPercentiles(const std::vector<Row>& rows) {
  std::map<std::string, std::vector<uint64_t>> durations;
  std::map<std::string, uint64_t> counts;
  for (const Row& row : rows) {
    durations[row.name].push_back(row.virtual_ns());
    ++counts[row.name];
  }
  std::printf("Per-op virtual latency (ns, nearest-rank):\n");
  std::printf("  %-26s %8s %12s %12s %12s\n", "op", "count", "p50", "p95",
              "p99");
  for (auto& [name, samples] : durations) {
    std::sort(samples.begin(), samples.end());
    std::printf("  %-26s %8" PRIu64 " %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                "\n",
                name.c_str(), counts[name], Percentile(samples, 50),
                Percentile(samples, 95), Percentile(samples, 99));
  }
  std::printf("\n");
}

// Huge/base frame split per layer (DESIGN.md §4.14): how much of each
// layer's frame traffic moved as whole 2 MiB units. Omitted entirely for
// traces with no huge_frames column (all zeros).
void PrintHugeShare(const std::vector<Row>& rows) {
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_layer;
  uint64_t total_huge = 0;
  for (const Row& row : rows) {
    by_layer[row.layer].first += row.frames;
    by_layer[row.layer].second += row.huge_frames;
    total_huge += row.huge_frames;
  }
  if (total_huge == 0) {
    return;  // pre-§4.14 trace or no huge traffic: keep report unchanged
  }
  std::printf("Huge-frame share per layer (frames moved as 2 MiB units):\n");
  std::printf("  %-10s %15s %15s %8s\n", "layer", "frames", "huge_frames",
              "share");
  for (const auto& [layer, pair] : by_layer) {
    const auto [frames, huge] = pair;
    if (frames == 0) {
      continue;
    }
    std::printf("  %-10s %15" PRIu64 " %15" PRIu64 " %7.1f%%\n",
                layer.c_str(), frames, huge,
                100.0 * static_cast<double>(huge) /
                    static_cast<double>(frames));
  }
  std::printf("\n");
}

// Fault-injection annotations (DESIGN.md §4.9): which operations took
// injected faults, and how many retries it cost to get past them.
void PrintFaults(const std::vector<Row>& rows) {
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_name;
  uint64_t total_faults = 0;
  uint64_t total_retries = 0;
  for (const Row& row : rows) {
    if (row.faults == 0 && row.retries == 0) {
      continue;
    }
    by_name[row.name].first += row.faults;
    by_name[row.name].second += row.retries;
    total_faults += row.faults;
    total_retries += row.retries;
  }
  if (by_name.empty()) {
    return;  // clean trace: keep the report unchanged
  }
  std::printf("Fault annotations (injected faults / retries per op):\n");
  std::printf("  %-26s %10s %10s\n", "op", "faults", "retries");
  for (const auto& [name, counts] : by_name) {
    std::printf("  %-26s %10" PRIu64 " %10" PRIu64 "\n", name.c_str(),
                counts.first, counts.second);
  }
  std::printf("  %-26s %10" PRIu64 " %10" PRIu64 "\n\n", "total",
              total_faults, total_retries);
}

// The slowest root span's chain of heaviest children — where one request
// actually spent its virtual time, level by level.
void PrintCriticalPath(const std::vector<Row>& rows) {
  const Row* slowest = nullptr;
  for (const Row& row : rows) {
    if (row.parent_id == 0 &&
        (slowest == nullptr || row.virtual_ns() > slowest->virtual_ns())) {
      slowest = &row;
    }
  }
  if (slowest == nullptr) {
    std::printf("Critical path: no root spans in trace\n");
    return;
  }
  std::printf("Critical path of slowest request (trace %" PRIu64 "):\n",
              slowest->trace_id);
  const Row* current = slowest;
  int depth = 0;
  while (current != nullptr) {
    std::printf("  %*s%-26s %-10s %12" PRIu64 " ns  (charge %" PRIu64
                " ns, %" PRIu64 " frames)",
                2 * depth, "", current->name.c_str(), current->layer.c_str(),
                current->virtual_ns(), current->charge_ns, current->frames);
    if (current->faults > 0 || current->retries > 0) {
      std::printf("  [%" PRIu64 " faults, %" PRIu64 " retries]",
                  current->faults, current->retries);
    }
    std::printf("\n");
    const Row* heaviest = nullptr;
    for (const Row& row : rows) {
      if (row.trace_id == slowest->trace_id &&
          row.parent_id == current->span_id &&
          (heaviest == nullptr ||
           row.virtual_ns() > heaviest->virtual_ns())) {
        heaviest = &row;
      }
    }
    current = heaviest;
    ++depth;
  }
  std::printf("\n");
}

int Report(const std::string& path) {
  std::vector<Row> rows;
  if (!Load(path, &rows)) {
    return 1;
  }
  std::vector<Row> spans;
  std::vector<Row> events;
  uint64_t unknown = 0;
  SplitTelemetry(rows, &spans, &events, &unknown);
  std::printf("%s: %zu spans, %zu telemetry events\n\n", path.c_str(),
              spans.size(), events.size());
  PrintLayerBreakdown(spans);
  PrintPercentiles(spans);
  PrintHugeShare(spans);
  PrintFaults(spans);
  PrintTelemetryEvents(events, unknown);
  PrintCriticalPath(spans);
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  std::vector<Row> rows_a;
  std::vector<Row> rows_b;
  if (!Load(path_a, &rows_a) || !Load(path_b, &rows_b)) {
    return 1;
  }
  std::vector<Row> a;
  std::vector<Row> b;
  std::vector<Row> events_a;
  std::vector<Row> events_b;
  uint64_t unknown = 0;
  SplitTelemetry(rows_a, &a, &events_a, &unknown);
  SplitTelemetry(rows_b, &b, &events_b, &unknown);
  if (!events_a.empty() || !events_b.empty()) {
    std::printf("Telemetry events: %zu -> %zu (excluded from attribution)\n",
                events_a.size(), events_b.size());
  }
  const std::map<std::string, uint64_t> layers_a = LayerChargeNs(a);
  const std::map<std::string, uint64_t> layers_b = LayerChargeNs(b);
  std::map<std::string, std::pair<uint64_t, uint64_t>> merged;
  for (const auto& [layer, ns] : layers_a) {
    merged[layer].first = ns;
  }
  for (const auto& [layer, ns] : layers_b) {
    merged[layer].second = ns;
  }
  std::printf("Per-layer attribution diff (%s -> %s):\n", path_a.c_str(),
              path_b.c_str());
  std::printf("  %-10s %15s %15s %10s\n", "layer", "before_ns", "after_ns",
              "delta");
  for (const auto& [layer, pair] : merged) {
    const auto [before, after] = pair;
    if (before == 0) {
      std::printf("  %-10s %15" PRIu64 " %15" PRIu64 " %10s\n", layer.c_str(),
                  before, after, "new");
    } else {
      const double delta = 100.0 *
                           (static_cast<double>(after) -
                            static_cast<double>(before)) /
                           static_cast<double>(before);
      std::printf("  %-10s %15" PRIu64 " %15" PRIu64 " %+9.1f%%\n",
                  layer.c_str(), before, after, delta);
    }
  }
  return 0;
}

#define SELF_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "ha_trace_tool: self-check FAILED: %s\n", \
                   #cond);                                            \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int SelfCheck() {
  // Percentiles: nearest-rank on a known sample.
  const std::vector<uint64_t> sample = {10, 20, 30, 40, 50,
                                        60, 70, 80, 90, 100};
  SELF_CHECK(Percentile(sample, 50) == 50);
  SELF_CHECK(Percentile(sample, 95) == 100);
  SELF_CHECK(Percentile(sample, 99) == 100);
  SELF_CHECK(Percentile({}, 50) == 0);
  SELF_CHECK(Percentile({7}, 99) == 7);

  // Row parsing round-trip: legacy 12-column rows still parse (faults
  // and retries default to 0)...
  Row row;
  SELF_CHECK(ParseRow("1,2,0,3,ept,ept.unmap_run,100,250,150,512,5,9", &row));
  SELF_CHECK(row.trace_id == 1 && row.span_id == 2 && row.parent_id == 0);
  SELF_CHECK(row.vm == 3 && row.layer == "ept" &&
             row.name == "ept.unmap_run");
  SELF_CHECK(row.virtual_ns() == 150 && row.charge_ns == 150 &&
             row.frames == 512);
  SELF_CHECK(row.faults == 0 && row.retries == 0);
  SELF_CHECK(row.begin_wall_ns == 5 && row.end_wall_ns == 9);
  // ...14-column rows carry fault annotations but no huge split...
  SELF_CHECK(
      ParseRow("1,2,0,3,ept,ept.unmap_run,100,250,150,512,2,3,5,9", &row));
  SELF_CHECK(row.faults == 2 && row.retries == 3);
  SELF_CHECK(row.huge_frames == 0);
  SELF_CHECK(row.begin_wall_ns == 5 && row.end_wall_ns == 9);
  // ...and current 15-column rows carry the §4.14 huge_frames column.
  SELF_CHECK(ParseRow(
      "1,2,0,3,ept,ept.unmap_run,100,250,150,512,512,2,3,5,9", &row));
  SELF_CHECK(row.huge_frames == 512 && row.faults == 2 &&
             row.retries == 3);
  SELF_CHECK(row.begin_wall_ns == 5 && row.end_wall_ns == 9);
  SELF_CHECK(!ParseRow("not,enough,fields", &row));
  SELF_CHECK(
      !ParseRow("1,2,0,3,ept,ept.unmap_run,100,250,150,512,2,3,5", &row));

  // Layer aggregation: spans of one synthetic trace.
  std::vector<Row> rows;
  Row r;
  r.trace_id = 1;
  r.span_id = 1;
  r.parent_id = 0;
  r.layer = "request";
  r.name = "request.inflate";
  r.begin_vns = 0;
  r.end_vns = 1000;
  r.charge_ns = 0;
  rows.push_back(r);
  r.span_id = 2;
  r.parent_id = 1;
  r.layer = "llfree";
  r.name = "llfree.reclaim_huge";
  r.begin_vns = 0;
  r.end_vns = 400;
  r.charge_ns = 400;
  rows.push_back(r);
  r.span_id = 3;
  r.parent_id = 1;
  r.layer = "ept";
  r.name = "ept.unmap_run";
  r.begin_vns = 400;
  r.end_vns = 1000;
  r.charge_ns = 600;
  rows.push_back(r);
  const std::map<std::string, uint64_t> by_layer = LayerChargeNs(rows);
  SELF_CHECK(by_layer.at("llfree") == 400);
  SELF_CHECK(by_layer.at("ept") == 600);
  SELF_CHECK(by_layer.at("request") == 0);

  // Charge closure on the synthetic trace: children sum to the root.
  uint64_t charged = 0;
  for (const Row& span : rows) {
    charged += span.charge_ns;
  }
  SELF_CHECK(charged == rows[0].virtual_ns());

  // Telemetry markers are split out of the span analysis; unknown
  // layers are counted (and kept) rather than silently folded in.
  r.span_id = 4;
  r.parent_id = 0;
  r.layer = "telemetry";
  r.name = "telemetry.alert.latency_burn";
  r.begin_vns = 500;
  r.end_vns = 500;
  r.charge_ns = 0;
  rows.push_back(r);
  r.span_id = 5;
  r.layer = "mystery";
  r.name = "mystery.op";
  rows.push_back(r);
  std::vector<Row> spans;
  std::vector<Row> events;
  uint64_t unknown = 0;
  SplitTelemetry(rows, &spans, &events, &unknown);
  SELF_CHECK(spans.size() == 4 && events.size() == 1 && unknown == 1);
  SELF_CHECK(events[0].name == "telemetry.alert.latency_burn");
  SELF_CHECK(LayerChargeNs(spans).count("telemetry") == 0);

  std::printf("ha_trace_tool: self-check OK\n");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ha_trace_tool SPANS.csv\n"
               "       ha_trace_tool --diff A.csv B.csv\n"
               "       ha_trace_tool --self-check\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--self-check") == 0) {
    return SelfCheck();
  }
  if (argc == 4 && std::strcmp(argv[1], "--diff") == 0) {
    return Diff(argv[2], argv[3]);
  }
  if (argc == 2 && argv[1][0] != '-') {
    return Report(argv[1]);
  }
  return Usage();
}
