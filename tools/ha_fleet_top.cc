// ha_fleet_top — offline renderer for the fleet telemetry artifacts
// (the PREFIX.fleet.csv / PREFIX.vms.csv files written by bench_fleet
// --telemetry-out=PREFIX via src/telemetry/export.h).
//
//   ha_fleet_top PREFIX              fleet summary + top-K VM table
//   ha_fleet_top PREFIX PREFIX2...   per-policy comparison (one summary
//                                    row per prefix, e.g. one run per
//                                    resize policy on the same traffic)
//   ha_fleet_top --top=K ...         VM table depth (default 10)
//   ha_fleet_top --report PREFIX     compact machine-greppable report
//                                    for CI; exits 1 on missing or
//                                    empty telemetry
//   ha_fleet_top --self-check        internal consistency checks on
//                                    synthetic data (no input; run by
//                                    scripts/lint.sh)
//
// Everything rendered here is virtual-time data — deterministic across
// runs, machines, and worker-thread counts.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// One row of PREFIX.fleet.csv (one epoch barrier, fleet-wide).
struct FleetRow {
  double time_s = 0.0;
  uint64_t epoch = 0;
  double pressure = 0.0;
  double committed_gib = 0.0;
  double limit_gib = 0.0;
  double wss_gib = 0.0;
  double rss_gib = 0.0;
  uint64_t busy_vms = 0;
  uint64_t quarantined_vms = 0;
  uint64_t granted = 0;
  uint64_t clipped = 0;
  uint64_t rejected = 0;
  uint64_t rejected_delta = 0;
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
  double latency_burn_fast = 0.0;
  double latency_burn_slow = 0.0;
  double pressure_burn_fast = 0.0;
  double pressure_burn_slow = 0.0;
  uint64_t alerts = 0;
};

// One row of PREFIX.vms.csv (final gauges + run peaks for one VM).
struct VmRow {
  uint64_t vm = 0;
  unsigned shard = 0;
  double limit_mib = 0.0;
  double wss_mib = 0.0;
  double peak_wss_mib = 0.0;
  double peak_pressure = 0.0;
  uint64_t resizes = 0;
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
  uint64_t quarantined_frames = 0;
  bool quarantined = false;
};

bool SplitCsv(const std::string& line, std::vector<std::string>* fields) {
  fields->clear();
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) {
    fields->push_back(field);
  }
  return !fields->empty();
}

bool ParseFleetRow(const std::string& line, FleetRow* row) {
  std::vector<std::string> f;
  if (!SplitCsv(line, &f) || f.size() != 21) {
    return false;
  }
  try {
    row->time_s = std::stod(f[0]);
    row->epoch = std::stoull(f[1]);
    row->pressure = std::stod(f[2]);
    row->committed_gib = std::stod(f[3]);
    row->limit_gib = std::stod(f[4]);
    row->wss_gib = std::stod(f[5]);
    row->rss_gib = std::stod(f[6]);
    row->busy_vms = std::stoull(f[7]);
    row->quarantined_vms = std::stoull(f[8]);
    row->granted = std::stoull(f[9]);
    row->clipped = std::stoull(f[10]);
    row->rejected = std::stoull(f[11]);
    row->rejected_delta = std::stoull(f[12]);
    row->faults = std::stoull(f[13]);
    row->retries = std::stoull(f[14]);
    row->rollbacks = std::stoull(f[15]);
    row->latency_burn_fast = std::stod(f[16]);
    row->latency_burn_slow = std::stod(f[17]);
    row->pressure_burn_fast = std::stod(f[18]);
    row->pressure_burn_slow = std::stod(f[19]);
    row->alerts = std::stoull(f[20]);
  } catch (...) {
    return false;
  }
  return true;
}

bool ParseVmRow(const std::string& line, VmRow* row) {
  std::vector<std::string> f;
  if (!SplitCsv(line, &f) || f.size() != 12) {
    return false;
  }
  try {
    row->vm = std::stoull(f[0]);
    row->shard = static_cast<unsigned>(std::stoul(f[1]));
    row->limit_mib = std::stod(f[2]);
    row->wss_mib = std::stod(f[3]);
    row->peak_wss_mib = std::stod(f[4]);
    row->peak_pressure = std::stod(f[5]);
    row->resizes = std::stoull(f[6]);
    row->faults = std::stoull(f[7]);
    row->retries = std::stoull(f[8]);
    row->rollbacks = std::stoull(f[9]);
    row->quarantined_frames = std::stoull(f[10]);
    row->quarantined = f[11] == "1";
  } catch (...) {
    return false;
  }
  return true;
}

template <typename Row, typename Parse>
bool LoadCsv(const std::string& path, Parse parse, std::vector<Row>* rows,
             bool required) {
  std::ifstream file(path);
  if (!file) {
    if (required) {
      std::fprintf(stderr, "ha_fleet_top: cannot open %s\n", path.c_str());
    }
    return false;
  }
  std::string line;
  bool header = true;
  while (std::getline(file, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    Row row;
    if (!parse(line, &row)) {
      std::fprintf(stderr, "ha_fleet_top: bad row in %s: %s\n", path.c_str(),
                   line.c_str());
      return false;
    }
    rows->push_back(row);
  }
  return true;
}

// Scalar summary of one run, computed from the epoch series. Counters
// (rejected, faults, alerts) are cumulative in the CSV, so "total" is
// just the last row's value.
struct Summary {
  uint64_t epochs = 0;
  double duration_s = 0.0;
  double peak_pressure = 0.0;
  double mean_pressure = 0.0;
  double peak_latency_burn = 0.0;   // fast window
  double peak_pressure_burn = 0.0;  // fast window
  uint64_t quarantined_vms = 0;     // final
  uint64_t rejected = 0;            // final cumulative
  uint64_t faults = 0;              // final cumulative
  uint64_t alerts = 0;              // final cumulative
};

Summary Summarize(const std::vector<FleetRow>& fleet) {
  Summary s;
  s.epochs = fleet.size();
  double pressure_sum = 0.0;
  for (const FleetRow& row : fleet) {
    s.peak_pressure = std::max(s.peak_pressure, row.pressure);
    s.peak_latency_burn =
        std::max(s.peak_latency_burn, row.latency_burn_fast);
    s.peak_pressure_burn =
        std::max(s.peak_pressure_burn, row.pressure_burn_fast);
    pressure_sum += row.pressure;
  }
  if (!fleet.empty()) {
    s.mean_pressure = pressure_sum / static_cast<double>(fleet.size());
    s.duration_s = fleet.back().time_s;
    s.quarantined_vms = fleet.back().quarantined_vms;
    s.rejected = fleet.back().rejected;
    s.faults = fleet.back().faults;
    s.alerts = fleet.back().alerts;
  }
  return s;
}

// Hottest VMs first: run-peak pressure, then injected-fault count, then
// VM index for a total (deterministic) order.
void SortHottest(std::vector<VmRow>* vms) {
  std::sort(vms->begin(), vms->end(), [](const VmRow& a, const VmRow& b) {
    if (a.peak_pressure != b.peak_pressure) {
      return a.peak_pressure > b.peak_pressure;
    }
    if (a.faults != b.faults) {
      return a.faults > b.faults;
    }
    return a.vm < b.vm;
  });
}

void PrintSummary(const std::string& prefix, const Summary& s) {
  std::printf("%s: %" PRIu64 " epochs over %.1f s\n", prefix.c_str(),
              s.epochs, s.duration_s);
  std::printf("  pressure: peak %.3f, mean %.3f\n", s.peak_pressure,
              s.mean_pressure);
  std::printf("  burn (fast window): latency %.2f, pressure %.2f "
              "(x error budget)\n",
              s.peak_latency_burn, s.peak_pressure_burn);
  std::printf("  alerts %" PRIu64 ", quarantined VMs %" PRIu64
              ", rejected %" PRIu64 ", faults %" PRIu64 "\n\n",
              s.alerts, s.quarantined_vms, s.rejected, s.faults);
}

void PrintTopVms(std::vector<VmRow> vms, size_t top) {
  SortHottest(&vms);
  std::printf("Top %zu VMs by run-peak pressure:\n",
              std::min(top, vms.size()));
  std::printf("  %6s %5s %10s %10s %9s %8s %7s %8s %5s\n", "vm", "shard",
              "limit_mib", "peak_wss", "peak_pr", "resizes", "faults",
              "q_frames", "quar");
  for (size_t i = 0; i < vms.size() && i < top; ++i) {
    const VmRow& v = vms[i];
    std::printf("  %6" PRIu64 " %5u %10.1f %10.1f %9.3f %8" PRIu64
                " %7" PRIu64 " %8" PRIu64 " %5s\n",
                v.vm, v.shard, v.limit_mib, v.peak_wss_mib, v.peak_pressure,
                v.resizes, v.faults, v.quarantined_frames,
                v.quarantined ? "YES" : "");
  }
  std::printf("\n");
}

int Render(const std::vector<std::string>& prefixes, size_t top,
           bool report) {
  // Multiple prefixes: a comparison table (the per-policy view — one
  // bench_fleet --telemetry-out run per policy on identical traffic).
  if (prefixes.size() > 1 && !report) {
    std::printf("  %-24s %7s %8s %8s %8s %7s %9s %9s\n", "run", "epochs",
                "peak_pr", "mean_pr", "alerts", "quar", "rejected",
                "faults");
    for (const std::string& prefix : prefixes) {
      std::vector<FleetRow> fleet;
      if (!LoadCsv<FleetRow>(prefix + ".fleet.csv", ParseFleetRow, &fleet,
                             /*required=*/true)) {
        return 1;
      }
      const Summary s = Summarize(fleet);
      std::printf("  %-24s %7" PRIu64 " %8.3f %8.3f %8" PRIu64 " %7" PRIu64
                  " %9" PRIu64 " %9" PRIu64 "\n",
                  prefix.c_str(), s.epochs, s.peak_pressure, s.mean_pressure,
                  s.alerts, s.quarantined_vms, s.rejected, s.faults);
    }
    return 0;
  }

  int status = 0;
  for (const std::string& prefix : prefixes) {
    std::vector<FleetRow> fleet;
    std::vector<VmRow> vms;
    if (!LoadCsv<FleetRow>(prefix + ".fleet.csv", ParseFleetRow, &fleet,
                           /*required=*/true) ||
        !LoadCsv<VmRow>(prefix + ".vms.csv", ParseVmRow, &vms,
                        /*required=*/true)) {
      return 1;
    }
    const Summary s = Summarize(fleet);
    if (report) {
      // One greppable line for CI; empty telemetry is a failure (the
      // run was supposed to sample every epoch barrier).
      std::printf("fleet_top: prefix=%s epochs=%" PRIu64 " vms=%zu "
                  "peak_pressure=%.3f alerts=%" PRIu64
                  " quarantined_vms=%" PRIu64 " rejected=%" PRIu64
                  " faults=%" PRIu64 "\n",
                  prefix.c_str(), s.epochs, vms.size(), s.peak_pressure,
                  s.alerts, s.quarantined_vms, s.rejected, s.faults);
      if (s.epochs == 0 || vms.empty()) {
        std::fprintf(stderr, "ha_fleet_top: %s has empty telemetry\n",
                     prefix.c_str());
        status = 1;
      }
      continue;
    }
    PrintSummary(prefix, s);
    PrintTopVms(vms, top);
  }
  return status;
}

#define SELF_CHECK(cond)                                             \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "ha_fleet_top: self-check FAILED: %s\n", \
                   #cond);                                           \
      return 1;                                                      \
    }                                                                \
  } while (0)

int SelfCheck() {
  FleetRow fleet_row;
  SELF_CHECK(ParseFleetRow(
      "5.000,0,0.812500,3.2,4.1,2.9,3.0,128,7,10,2,5,1,42,9,1,"
      "1.25,0.50,8.00,2.00,3",
      &fleet_row));
  SELF_CHECK(fleet_row.epoch == 0 && fleet_row.busy_vms == 128);
  SELF_CHECK(fleet_row.quarantined_vms == 7 && fleet_row.rejected == 5);
  SELF_CHECK(fleet_row.faults == 42 && fleet_row.alerts == 3);
  SELF_CHECK(fleet_row.pressure_burn_fast == 8.0);
  SELF_CHECK(!ParseFleetRow("1,2,3", &fleet_row));

  VmRow vm_row;
  SELF_CHECK(
      ParseVmRow("17,1,48.000,32.500,60.250,0.950000,12,3,1,0,16,1",
                 &vm_row));
  SELF_CHECK(vm_row.vm == 17 && vm_row.shard == 1);
  SELF_CHECK(vm_row.peak_wss_mib == 60.25 && vm_row.quarantined);
  SELF_CHECK(vm_row.quarantined_frames == 16);
  SELF_CHECK(!ParseVmRow("17,1,48.0", &vm_row));

  // Summaries: peaks over the series, totals from the last row.
  std::vector<FleetRow> fleet(3);
  fleet[0].pressure = 0.5;
  fleet[1].pressure = 0.9;
  fleet[1].latency_burn_fast = 4.0;
  fleet[2].pressure = 0.7;
  fleet[2].time_s = 15.0;
  fleet[2].rejected = 11;
  fleet[2].alerts = 2;
  fleet[2].quarantined_vms = 1;
  const Summary s = Summarize(fleet);
  SELF_CHECK(s.epochs == 3 && s.peak_pressure == 0.9);
  SELF_CHECK(s.peak_latency_burn == 4.0 && s.duration_s == 15.0);
  SELF_CHECK(s.rejected == 11 && s.alerts == 2 && s.quarantined_vms == 1);
  SELF_CHECK(s.mean_pressure > 0.69 && s.mean_pressure < 0.71);

  // Hottest-first order: pressure desc, faults desc, vm asc.
  std::vector<VmRow> vms(4);
  vms[0].vm = 0;
  vms[0].peak_pressure = 0.5;
  vms[1].vm = 1;
  vms[1].peak_pressure = 0.9;
  vms[2].vm = 2;
  vms[2].peak_pressure = 0.9;
  vms[2].faults = 5;
  vms[3].vm = 3;
  vms[3].peak_pressure = 0.9;
  vms[3].faults = 5;
  SortHottest(&vms);
  SELF_CHECK(vms[0].vm == 2 && vms[1].vm == 3 && vms[2].vm == 1 &&
             vms[3].vm == 0);

  std::printf("ha_fleet_top: self-check OK\n");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ha_fleet_top [--top=K] PREFIX [PREFIX...]\n"
               "       ha_fleet_top --report PREFIX [PREFIX...]\n"
               "       ha_fleet_top --self-check\n"
               "PREFIX names telemetry artifacts written by bench_fleet\n"
               "--telemetry-out=PREFIX (PREFIX.fleet.csv, PREFIX.vms.csv)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  size_t top = 10;
  bool report = false;
  std::vector<std::string> prefixes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) {
      return SelfCheck();
    }
    if (std::strncmp(argv[i], "--top=", 6) == 0) {
      top = static_cast<size_t>(std::atoll(argv[i] + 6));
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      prefixes.push_back(argv[i]);
    }
  }
  if (prefixes.empty()) {
    return Usage();
  }
  return Render(prefixes, top, report);
}
