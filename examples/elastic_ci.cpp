// Elastic CI build farm (the paper's §5.5 motivation): a build VM runs
// CI jobs in bursts with idle time in between. With HyperAlloc's
// automatic reclamation the VM's host-memory footprint follows the jobs;
// the same VM with a static allocation pays for its peak the whole time.
//
// Prints a small timeline plus the billed GiB·min with and without
// automatic reclamation — the metric cloud providers charge for.
#include <cstdio>

#include "src/base/units.h"
#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/metrics/timeseries.h"
#include "src/workloads/compile.h"
#include "src/workloads/memory_pool.h"

using namespace hyperalloc;

namespace {

double RunFarm(bool auto_reclaim) {
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(32 * kGiB));

  guest::GuestConfig config;
  config.memory_bytes = 8 * kGiB;
  config.vcpus = 8;
  config.allocator = guest::AllocatorKind::kLLFree;
  guest::GuestVm vm(&sim, &host, config);
  core::HyperAllocMonitor monitor(&vm, {});
  if (auto_reclaim) {
    monitor.StartAuto();
  } else {
    vm.Touch(0, vm.total_frames());  // static VM: fully resident
  }

  workloads::MemoryPool pool(&vm);
  pool.DisableMigrationTracking();

  metrics::TimeSeries rss;
  bool sampling = true;
  std::function<void()> sample = [&] {
    if (!sampling) {
      return;
    }
    rss.Sample(sim.now(), static_cast<double>(vm.rss_bytes()) /
                              static_cast<double>(kGiB));
    sim.After(5 * sim::kSec, sample);
  };
  sample();

  // Three CI jobs with 5 minutes of idle time between them.
  workloads::CompileConfig job;
  job.workers = 8;
  job.compile_units = 150;
  job.link_jobs = 4;
  job.unit_ws_min = 40 * kMiB;
  job.unit_ws_max = 200 * kMiB;
  job.link_ws_min = 512 * kMiB;
  job.link_ws_max = kGiB;
  job.thp_fraction = 0.5;

  for (int ci_job = 0; ci_job < 3; ++ci_job) {
    job.seed = 10 + static_cast<uint64_t>(ci_job);
    workloads::CompileWorkload build(&vm, &pool, nullptr, job);
    bool done = false;
    build.Start([&] { done = true; });
    while (!done) {
      sim.Step();
    }
    build.MakeClean();
    std::printf("  job %d done at %-8s rss=%s\n", ci_job + 1,
                FormatDuration(sim.now()).c_str(),
                FormatBytes(vm.rss_bytes()).c_str());
    sim.RunUntil(sim.now() + 5 * sim::kMin);
    std::printf("  after idle:             rss=%s\n",
                FormatBytes(vm.rss_bytes()).c_str());
  }
  sampling = false;
  monitor.StopAuto();
  return rss.IntegralPerMinute();
}

}  // namespace

int main() {
  std::printf("CI build farm, static 8 GiB VM:\n");
  const double baseline = RunFarm(/*auto_reclaim=*/false);
  std::printf("CI build farm, HyperAlloc automatic reclamation:\n");
  const double elastic = RunFarm(/*auto_reclaim=*/true);

  std::printf("\nbilled footprint: static %.0f GiB*min vs elastic %.0f "
              "GiB*min (%.0f%% saved)\n",
              baseline, elastic, (1.0 - elastic / baseline) * 100.0);
  return 0;
}
