// Quickstart: create a guest VM with a hypervisor-shared LLFree
// allocator, attach the HyperAlloc monitor, and walk through the
// reclamation life cycle of paper §3: allocate & install, free,
// automatically soft-reclaim, shrink the hard limit, and grow it back.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/base/units.h"
#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"

using namespace hyperalloc;

namespace {

void Show(const char* step, guest::GuestVm& vm,
          core::HyperAllocMonitor& monitor) {
  std::printf("%-44s rss=%-10s limit=%-10s free=%s\n", step,
              FormatBytes(vm.rss_bytes()).c_str(),
              FormatBytes(monitor.limit_bytes()).c_str(),
              FormatBytes(vm.FreeFrames() * kFrameSize).c_str());
}

}  // namespace

int main() {
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(8 * kGiB));

  // A 2 GiB guest using LLFree as its page-frame allocator.
  guest::GuestConfig config;
  config.memory_bytes = 2 * kGiB;
  config.vcpus = 4;
  config.dma32_bytes = 0;
  config.allocator = guest::AllocatorKind::kLLFree;
  guest::GuestVm vm(&sim, &host, config);

  // The monitor maps the guest allocator's state (shared memory) and
  // installs the install-hypercall handler.
  core::HyperAllocMonitor monitor(&vm, {});
  Show("boot (all memory soft-reclaimed)", vm, monitor);

  // The guest allocates memory; each first touch of a huge frame goes
  // through one blocking install hypercall that backs the whole 2 MiB.
  std::vector<FrameId> frames;
  for (int i = 0; i < 256; ++i) {  // 512 MiB
    const Result<FrameId> r = vm.Alloc(kHugeOrder, AllocType::kHuge);
    if (!r.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n", ToString(r.error()));
      return 1;
    }
    vm.Touch(*r, kFramesPerHuge);
    frames.push_back(*r);
  }
  Show("guest allocated + touched 512 MiB", vm, monitor);

  // The guest frees everything — the host memory stays assigned...
  for (const FrameId f : frames) {
    vm.Free(f, kHugeOrder);
  }
  vm.PurgeAllocatorCaches();
  Show("guest freed everything", vm, monitor);

  // ...until the monitor's periodic scan soft-reclaims the free huge
  // frames: 18 cache lines of state per GiB, no guest involvement.
  const uint64_t reclaimed = monitor.AutoReclaimPass();
  std::printf("auto reclamation took %llu huge frames\n",
              static_cast<unsigned long long>(reclaimed));
  Show("after one auto-reclamation pass", vm, monitor);

  // Shrink the hard limit to 512 MiB (the memory is gone for the guest)
  // and grow it back (lazily; installs happen on future allocations).
  bool done = false;
  monitor.Request({.target_bytes = 512 * kMiB, .done = [&] { done = true; }});
  while (!done) {
    sim.Step();
  }
  Show("hard limit shrunk to 512 MiB", vm, monitor);

  done = false;
  monitor.Request({.target_bytes = 2 * kGiB, .done = [&] { done = true; }});
  while (!done) {
    sim.Step();
  }
  Show("hard limit restored (lazy)", vm, monitor);

  std::printf("\nvirtual time elapsed: %s; installs: %llu\n",
              FormatDuration(sim.now()).c_str(),
              static_cast<unsigned long long>(monitor.installs()));
  return 0;
}
