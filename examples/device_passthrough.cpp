// DMA safety with device passthrough (paper §2/§3.2).
//
// A VM with a VFIO passthrough NIC reclaims memory three ways:
//  1. HyperAlloc — install-on-allocate pins frames in the IOMMU *before*
//     the guest allocator returns them: DMA to any allocated frame is
//     always safe.
//  2. A balloon-style "reclaim without install" — shows how a
//     fault-based technique breaks: the guest re-allocates a reclaimed
//     frame without any hypervisor interaction and points the device at
//     an unbacked IOMMU entry. The DMA fails.
//  3. virtio-mem — safe through pre-population, at the cost of keeping
//     every plugged block resident.
#include <cstdio>

#include "src/base/units.h"
#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/vmem/virtio_mem.h"

using namespace hyperalloc;

namespace {

guest::GuestConfig VfioGuest(guest::AllocatorKind allocator,
                             uint64_t movable) {
  guest::GuestConfig config;
  config.memory_bytes = 2 * kGiB;
  config.vcpus = 4;
  config.dma32_bytes = 0;
  config.movable_bytes = movable;
  config.allocator = allocator;
  config.vfio = true;
  return config;
}

void HyperAllocCase() {
  std::printf("--- HyperAlloc: DMA-safe by install-on-allocate ---\n");
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(8 * kGiB));
  guest::GuestVm vm(&sim, &host, VfioGuest(guest::AllocatorKind::kLLFree, 0));
  core::HyperAllocMonitor monitor(&vm, {});

  // The guest allocates a DMA buffer; the install hypercall pinned it.
  const Result<FrameId> buffer = vm.Alloc(kHugeOrder, AllocType::kHuge);
  std::printf("NIC DMA into freshly allocated buffer: %s\n",
              vm.DmaWrite(*buffer, kFramesPerHuge) ? "OK" : "FAILED");

  // Free + auto-reclaim: the monitor unpins the frame again.
  vm.Free(*buffer, kHugeOrder);
  vm.PurgeAllocatorCaches();
  monitor.AutoReclaimPass();
  std::printf("NIC DMA into reclaimed (free) frame:    %s  "
              "(a conforming guest never does this)\n",
              vm.DmaWrite(*buffer, kFramesPerHuge) ? "OK" : "FAILED");

  // Re-allocation re-installs and re-pins before returning.
  const Result<FrameId> again = vm.Alloc(kHugeOrder, AllocType::kHuge);
  std::printf("NIC DMA after re-allocation:            %s\n\n",
              vm.DmaWrite(*again, kFramesPerHuge) ? "OK" : "FAILED");
}

void FaultBasedCase() {
  std::printf("--- Fault-based reclamation (balloon-style): NOT DMA-safe "
              "---\n");
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(8 * kGiB));
  guest::GuestVm vm(&sim, &host, VfioGuest(guest::AllocatorKind::kBuddy, 0));

  // Boot-time VFIO behaviour: pin everything (as QEMU does)...
  HA_CHECK(vm.ept().Map(0, vm.total_frames()) != hv::Ept::kNoHostMemory);
  for (HugeId h = 0; h < HugesForFrames(vm.total_frames()); ++h) {
    vm.iommu()->Pin(h);
  }
  const Result<FrameId> buffer = vm.Alloc(kHugeOrder, AllocType::kHuge);
  std::printf("NIC DMA before reclamation:             %s\n",
              vm.DmaWrite(*buffer, kFramesPerHuge) ? "OK" : "FAILED");
  vm.Free(*buffer, kHugeOrder);

  // Free-page reporting discards the frame: EPT + IOMMU entry dropped,
  // but the guest allocator still considers the frame usable.
  vm.ept().Unmap(*buffer, kFramesPerHuge);
  vm.iommu()->Unpin(FrameToHuge(*buffer));

  // The guest re-allocates it (no hypervisor interaction!) and programs
  // the NIC to receive into it. Most devices cannot take IO page faults:
  const Result<FrameId> again = vm.Alloc(kHugeOrder, AllocType::kHuge);
  std::printf("NIC DMA into re-allocated frame %llu:     %s  <- the "
              "reason virtio-balloon forbids passthrough\n\n",
              static_cast<unsigned long long>(*again),
              vm.DmaWrite(*again, kFramesPerHuge) ? "OK" : "FAILED");
}

void VirtioMemCase() {
  std::printf("--- virtio-mem: DMA-safe by pre-population ---\n");
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(8 * kGiB));
  guest::GuestVm vm(&sim, &host,
                    VfioGuest(guest::AllocatorKind::kBuddy, kGiB));
  vmem::VirtioMem vmem_dev(&vm, {});
  std::printf("boot RSS (everything pre-populated + pinned): %s\n",
              FormatBytes(vm.rss_bytes()).c_str());
  const Result<FrameId> buffer = vm.Alloc(kHugeOrder, AllocType::kHuge);
  std::printf("NIC DMA into allocated buffer:          %s\n",
              vm.DmaWrite(*buffer, kFramesPerHuge) ? "OK" : "FAILED");

  bool done = false;
  vmem_dev.Request({.target_bytes = vm.config().memory_bytes - 512 * kMiB,
                    .done = [&] { done = true; }});
  while (!done) {
    sim.Step();
  }
  std::printf("after unplugging 512 MiB: RSS %s (unplugged memory is "
              "gone for the guest too)\n",
              FormatBytes(vm.rss_bytes()).c_str());
}

}  // namespace

int main() {
  HyperAllocCase();
  FaultBasedCase();
  VirtioMemCase();
  return 0;
}
