// Multi-tenant packing (paper §5.6): three VMs with staggered bursts
// share one host. With HyperAlloc's automatic reclamation the host's
// peak memory demand drops far below the provisioned sum, making room
// for additional tenants on the same hardware.
#include <cstdio>

#include "src/base/units.h"
#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/metrics/timeseries.h"
#include "src/workloads/blender.h"
#include "src/workloads/memory_pool.h"

using namespace hyperalloc;

namespace {

struct Tenant {
  std::unique_ptr<guest::GuestVm> vm;
  std::unique_ptr<core::HyperAllocMonitor> monitor;
  std::unique_ptr<workloads::MemoryPool> pool;
  std::unique_ptr<workloads::BlenderWorkload> job;
  bool done = false;
};

void RunScenario(bool reclaim) {
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(32 * kGiB));

  std::vector<std::unique_ptr<Tenant>> tenants;
  for (int i = 0; i < 3; ++i) {
    auto tenant = std::make_unique<Tenant>();
    guest::GuestConfig config;
    config.name = "tenant" + std::to_string(i);
    config.memory_bytes = 6 * kGiB;
    config.vcpus = 4;
    config.dma32_bytes = 0;
    config.allocator = guest::AllocatorKind::kLLFree;
    tenant->vm = std::make_unique<guest::GuestVm>(&sim, &host, config);
    tenant->monitor =
        std::make_unique<core::HyperAllocMonitor>(tenant->vm.get(),
                                                  core::HyperAllocConfig{});
    if (reclaim) {
      tenant->monitor->StartAuto();
    } else {
      tenant->vm->Touch(0, tenant->vm->total_frames());
    }
    tenant->pool = std::make_unique<workloads::MemoryPool>(tenant->vm.get());
    tenant->pool->DisableMigrationTracking();
    workloads::BlenderConfig job;
    job.working_set = 4 * kGiB;
    job.scene_bytes = 512 * kMiB;
    job.render_time = 3 * sim::kMin;
    job.slab_alloc_per_tick = 4 * kMiB;
    tenant->job = std::make_unique<workloads::BlenderWorkload>(
        tenant->vm.get(), tenant->pool.get(), job);
    tenants.push_back(std::move(tenant));
  }

  metrics::TimeSeries used;
  bool sampling = true;
  std::function<void()> sample = [&] {
    if (!sampling) {
      return;
    }
    used.Sample(sim.now(), static_cast<double>(host.used_bytes()) /
                               static_cast<double>(kGiB));
    sim.After(2 * sim::kSec, sample);
  };
  sample();

  // Staggered bursts: tenants start 2.5 minutes apart (relative to now —
  // VM setup already consumed some virtual time).
  const sim::Time start = sim.now();
  for (int i = 0; i < 3; ++i) {
    Tenant* tenant = tenants[static_cast<size_t>(i)].get();
    sim.At(start + static_cast<sim::Time>(i) * 150 * sim::kSec, [tenant] {
      tenant->job->Run([tenant] { tenant->done = true; });
    });
  }
  auto all_done = [&] {
    for (const auto& tenant : tenants) {
      if (!tenant->done) {
        return false;
      }
    }
    return true;
  };
  while (!all_done()) {
    sim.Step();
  }
  sim.RunUntil(sim.now() + 2 * sim::kMin);  // trailing idle
  sampling = false;

  std::printf("  provisioned: %-10s peak used: %-10s footprint: %.0f "
              "GiB*min\n",
              FormatBytes(3 * 6 * kGiB).c_str(),
              FormatBytes(host.peak_frames() * kFrameSize).c_str(),
              used.IntegralPerMinute());
}

}  // namespace

int main() {
  std::printf("three 6 GiB tenants, staggered render bursts\n\n");
  std::printf("static provisioning:\n");
  RunScenario(/*reclaim=*/false);
  std::printf("HyperAlloc automatic reclamation:\n");
  RunScenario(/*reclaim=*/true);
  std::printf("\nThe freed peak headroom is capacity for additional "
              "tenants on the same host (paper 5.6).\n");
  return 0;
}
