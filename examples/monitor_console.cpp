// Interactive management console (QEMU-HMP style) over a HyperAlloc VM.
//
//   ./build/examples/monitor_console            # interactive REPL
//   echo "balloon 1G\ninfo stats" | ./build/examples/monitor_console
//
// Commands: balloon <size> | info balloon | info stats | auto on|off |
// workload — `workload` runs a short burst so `info stats` has something
// to show. Time is virtual: every command drains the event queue.
#include <cstdio>
#include <iostream>
#include <string>

#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/hv/console.h"
#include "src/workloads/memory_pool.h"

using namespace hyperalloc;

int main() {
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(16 * kGiB));
  guest::GuestConfig config;
  config.memory_bytes = 4 * kGiB;
  config.vcpus = 4;
  config.dma32_bytes = 0;
  config.allocator = guest::AllocatorKind::kLLFree;
  guest::GuestVm vm(&sim, &host, config);
  core::HyperAllocMonitor monitor(&vm, {});
  hv::Console console(&vm, &monitor);
  workloads::MemoryPool pool(&vm);
  pool.DisableMigrationTracking();

  std::printf("HyperAlloc monitor console — 4 GiB VM. Type 'help'.\n");
  std::string line;
  uint64_t burst_region = 0;
  while (std::printf("(hyperalloc) "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") {
      break;
    }
    if (line == "workload") {
      // A memory burst: allocate 2 GiB, free the previous burst.
      if (burst_region != 0) {
        pool.FreeRegion(burst_region, 0);
      }
      burst_region = pool.AllocRegion(2 * kGiB, 0.5, 0);
      std::printf("allocated a 2 GiB burst (previous burst freed)\n");
    } else if (!line.empty()) {
      std::printf("%s\n", console.Execute(line).c_str());
    }
    // Let pending virtual-time work (resize slices, the 5 s auto-reclaim
    // daemon) run between commands.
    sim.RunUntil(sim.now() + 6 * sim::kSec);
  }
  std::printf("\n");
  return 0;
}
